//! Classifiers for the downstream prediction experiments (Fig. 11): MLP,
//! Gaussian naive Bayes, multinomial logistic regression, CART decision
//! tree, and a linear SVM — all from scratch.

use dg_nn::graph::Graph;
use dg_nn::layers::{Activation, Mlp};
use dg_nn::optim::Adam;
use dg_nn::params::ParamStore;
use dg_nn::tensor::Tensor;
use rand::rngs::StdRng;
use rand::SeedableRng;

/// A trainable multi-class classifier over flat feature vectors.
pub trait Classifier {
    /// Model name as it appears in the paper's figures.
    fn name(&self) -> &'static str;
    /// Fits on `n` rows of `dim` features with labels in `0..k`.
    fn fit(&mut self, x: &[f64], y: &[usize], n: usize, dim: usize, k: usize);
    /// Predicts labels for `n` rows.
    fn predict(&self, x: &[f64], n: usize, dim: usize) -> Vec<usize>;
}

/// Per-dimension standardization fitted on training data.
#[derive(Debug, Clone, Default)]
pub struct Standardizer {
    mean: Vec<f64>,
    std: Vec<f64>,
}

impl Standardizer {
    /// Fits mean/std per dimension.
    pub fn fit(x: &[f64], n: usize, dim: usize) -> Self {
        let mut mean = vec![0.0; dim];
        for r in 0..n {
            for (m, &v) in mean.iter_mut().zip(&x[r * dim..(r + 1) * dim]) {
                *m += v;
            }
        }
        for m in &mut mean {
            *m /= n.max(1) as f64;
        }
        let mut var = vec![0.0; dim];
        for r in 0..n {
            for ((s, &v), m) in var.iter_mut().zip(&x[r * dim..(r + 1) * dim]).zip(&mean) {
                *s += (v - m) * (v - m);
            }
        }
        let std = var.into_iter().map(|v| (v / n.max(1) as f64).sqrt().max(1e-9)).collect();
        Standardizer { mean, std }
    }

    /// Applies the transform.
    pub fn transform(&self, x: &[f64], n: usize, dim: usize) -> Vec<f64> {
        let mut out = Vec::with_capacity(n * dim);
        for r in 0..n {
            for (j, &v) in x[r * dim..(r + 1) * dim].iter().enumerate() {
                out.push((v - self.mean[j]) / self.std[j]);
            }
        }
        out
    }
}

// ---------------------------------------------------------------------------
// Gaussian naive Bayes
// ---------------------------------------------------------------------------

/// Gaussian naive Bayes with per-class diagonal Gaussians.
#[derive(Debug, Clone, Default)]
pub struct NaiveBayes {
    priors: Vec<f64>,
    means: Vec<Vec<f64>>,
    vars: Vec<Vec<f64>>,
}

impl Classifier for NaiveBayes {
    fn name(&self) -> &'static str {
        "NaiveBayes"
    }

    fn fit(&mut self, x: &[f64], y: &[usize], n: usize, dim: usize, k: usize) {
        let mut counts = vec![0usize; k];
        let mut means = vec![vec![0.0; dim]; k];
        for r in 0..n {
            counts[y[r]] += 1;
            for (m, &v) in means[y[r]].iter_mut().zip(&x[r * dim..(r + 1) * dim]) {
                *m += v;
            }
        }
        for (m, &c) in means.iter_mut().zip(&counts) {
            for v in m.iter_mut() {
                *v /= c.max(1) as f64;
            }
        }
        let mut vars = vec![vec![0.0; dim]; k];
        for r in 0..n {
            for ((s, &v), m) in vars[y[r]].iter_mut().zip(&x[r * dim..(r + 1) * dim]).zip(&means[y[r]]) {
                *s += (v - m) * (v - m);
            }
        }
        for (s, &c) in vars.iter_mut().zip(&counts) {
            for v in s.iter_mut() {
                *v = (*v / c.max(1) as f64).max(1e-9);
            }
        }
        self.priors = counts.iter().map(|&c| (c.max(1) as f64) / n as f64).collect();
        self.means = means;
        self.vars = vars;
    }

    fn predict(&self, x: &[f64], n: usize, dim: usize) -> Vec<usize> {
        (0..n)
            .map(|r| {
                let row = &x[r * dim..(r + 1) * dim];
                let mut best = 0;
                let mut best_lp = f64::NEG_INFINITY;
                for c in 0..self.priors.len() {
                    let mut lp = self.priors[c].ln();
                    for ((&v, &m), &s2) in row.iter().zip(&self.means[c]).zip(&self.vars[c]) {
                        lp += -0.5 * ((v - m) * (v - m) / s2 + s2.ln());
                    }
                    if lp > best_lp {
                        best_lp = lp;
                        best = c;
                    }
                }
                best
            })
            .collect()
    }
}

// ---------------------------------------------------------------------------
// Multinomial logistic regression
// ---------------------------------------------------------------------------

/// Multinomial (softmax) logistic regression trained by full-batch gradient
/// descent with L2 regularization.
#[derive(Debug, Clone)]
pub struct LogisticRegression {
    /// Gradient-descent iterations.
    pub iterations: usize,
    /// Learning rate.
    pub lr: f64,
    /// L2 regularization strength.
    pub l2: f64,
    std: Standardizer,
    w: Vec<f64>, // (dim + 1) x k, last row is the bias
    k: usize,
}

impl Default for LogisticRegression {
    fn default() -> Self {
        LogisticRegression {
            iterations: 300,
            lr: 0.5,
            l2: 1e-4,
            std: Standardizer::default(),
            w: Vec::new(),
            k: 0,
        }
    }
}

impl Classifier for LogisticRegression {
    fn name(&self) -> &'static str {
        "LogisticRegr."
    }

    fn fit(&mut self, x: &[f64], y: &[usize], n: usize, dim: usize, k: usize) {
        self.std = Standardizer::fit(x, n, dim);
        let xs = self.std.transform(x, n, dim);
        let d1 = dim + 1;
        self.k = k;
        self.w = vec![0.0; d1 * k];
        for _ in 0..self.iterations {
            let mut grad = vec![0.0; d1 * k];
            for r in 0..n {
                let row = &xs[r * dim..(r + 1) * dim];
                let probs = self.softmax_row(row, dim);
                for c in 0..k {
                    let err = probs[c] - if y[r] == c { 1.0 } else { 0.0 };
                    for (j, &v) in row.iter().enumerate() {
                        grad[j * k + c] += err * v;
                    }
                    grad[dim * k + c] += err;
                }
            }
            let scale = self.lr / n.max(1) as f64;
            for (wi, gi) in self.w.iter_mut().zip(&grad) {
                *wi -= scale * (gi + self.l2 * *wi);
            }
        }
    }

    fn predict(&self, x: &[f64], n: usize, dim: usize) -> Vec<usize> {
        let xs = self.std.transform(x, n, dim);
        (0..n)
            .map(|r| {
                let probs = self.softmax_row(&xs[r * dim..(r + 1) * dim], dim);
                argmax(&probs)
            })
            .collect()
    }
}

impl LogisticRegression {
    fn softmax_row(&self, row: &[f64], dim: usize) -> Vec<f64> {
        let k = self.k;
        let mut logits = vec![0.0; k];
        for (c, logit) in logits.iter_mut().enumerate() {
            let mut z = self.w[dim * k + c];
            for (j, &v) in row.iter().enumerate() {
                z += self.w[j * k + c] * v;
            }
            *logit = z;
        }
        let mx = logits.iter().copied().fold(f64::NEG_INFINITY, f64::max);
        let mut sum = 0.0;
        for z in &mut logits {
            *z = (*z - mx).exp();
            sum += *z;
        }
        for z in &mut logits {
            *z /= sum;
        }
        logits
    }
}

// ---------------------------------------------------------------------------
// CART decision tree
// ---------------------------------------------------------------------------

/// CART decision tree with Gini impurity.
#[derive(Debug, Clone)]
pub struct DecisionTree {
    /// Maximum tree depth.
    pub max_depth: usize,
    /// Minimum samples required to split a node.
    pub min_split: usize,
    /// Maximum candidate thresholds per feature (quantile subsampling).
    pub max_thresholds: usize,
    nodes: Vec<TreeNode>,
    k: usize,
}

#[derive(Debug, Clone)]
enum TreeNode {
    Leaf { class: usize },
    Split { dim: usize, threshold: f64, left: usize, right: usize },
}

impl Default for DecisionTree {
    fn default() -> Self {
        DecisionTree { max_depth: 8, min_split: 4, max_thresholds: 32, nodes: Vec::new(), k: 0 }
    }
}

impl Classifier for DecisionTree {
    fn name(&self) -> &'static str {
        "DecisionTree"
    }

    fn fit(&mut self, x: &[f64], y: &[usize], n: usize, dim: usize, k: usize) {
        self.k = k;
        self.nodes.clear();
        let idx: Vec<usize> = (0..n).collect();
        self.build(x, y, dim, idx, 0);
    }

    fn predict(&self, x: &[f64], n: usize, dim: usize) -> Vec<usize> {
        (0..n)
            .map(|r| {
                let row = &x[r * dim..(r + 1) * dim];
                let mut node = 0;
                loop {
                    match &self.nodes[node] {
                        TreeNode::Leaf { class } => return *class,
                        TreeNode::Split { dim, threshold, left, right } => {
                            node = if row[*dim] <= *threshold { *left } else { *right };
                        }
                    }
                }
            })
            .collect()
    }
}

impl DecisionTree {
    fn build(&mut self, x: &[f64], y: &[usize], dim: usize, idx: Vec<usize>, depth: usize) -> usize {
        let counts = self.class_counts(y, &idx);
        let majority = argmax_usize(&counts);
        let pure = counts.iter().filter(|&&c| c > 0).count() <= 1;
        if pure || depth >= self.max_depth || idx.len() < self.min_split {
            self.nodes.push(TreeNode::Leaf { class: majority });
            return self.nodes.len() - 1;
        }
        let parent_gini = gini(&counts, idx.len());
        let mut best: Option<(usize, f64, f64)> = None; // (dim, threshold, gain)
        for d in 0..dim {
            let mut vals: Vec<f64> = idx.iter().map(|&i| x[i * dim + d]).collect();
            vals.sort_by(|a, b| a.partial_cmp(b).expect("finite"));
            vals.dedup();
            if vals.len() < 2 {
                continue;
            }
            let stride = (vals.len() / self.max_thresholds).max(1);
            for w in vals.windows(2).step_by(stride) {
                let t = (w[0] + w[1]) / 2.0;
                let (lc, rc, ln, rn) = self.split_counts(x, y, dim, &idx, d, t);
                if ln == 0 || rn == 0 {
                    continue;
                }
                let g = parent_gini
                    - (ln as f64 / idx.len() as f64) * gini(&lc, ln)
                    - (rn as f64 / idx.len() as f64) * gini(&rc, rn);
                if best.map(|(_, _, bg)| g > bg).unwrap_or(g > 1e-12) {
                    best = Some((d, t, g));
                }
            }
        }
        let Some((d, t, _)) = best else {
            self.nodes.push(TreeNode::Leaf { class: majority });
            return self.nodes.len() - 1;
        };
        let (li, ri): (Vec<usize>, Vec<usize>) = idx.iter().partition(|&&i| x[i * dim + d] <= t);
        let node = self.nodes.len();
        self.nodes.push(TreeNode::Leaf { class: majority }); // placeholder
        let left = self.build(x, y, dim, li, depth + 1);
        let right = self.build(x, y, dim, ri, depth + 1);
        self.nodes[node] = TreeNode::Split { dim: d, threshold: t, left, right };
        node
    }

    fn class_counts(&self, y: &[usize], idx: &[usize]) -> Vec<usize> {
        let mut counts = vec![0usize; self.k];
        for &i in idx {
            counts[y[i]] += 1;
        }
        counts
    }

    fn split_counts(
        &self,
        x: &[f64],
        y: &[usize],
        dim: usize,
        idx: &[usize],
        d: usize,
        t: f64,
    ) -> (Vec<usize>, Vec<usize>, usize, usize) {
        let mut lc = vec![0usize; self.k];
        let mut rc = vec![0usize; self.k];
        let mut ln = 0;
        let mut rn = 0;
        for &i in idx {
            if x[i * dim + d] <= t {
                lc[y[i]] += 1;
                ln += 1;
            } else {
                rc[y[i]] += 1;
                rn += 1;
            }
        }
        (lc, rc, ln, rn)
    }
}

fn gini(counts: &[usize], total: usize) -> f64 {
    if total == 0 {
        return 0.0;
    }
    1.0 - counts
        .iter()
        .map(|&c| {
            let p = c as f64 / total as f64;
            p * p
        })
        .sum::<f64>()
}

// ---------------------------------------------------------------------------
// Linear SVM (one-vs-rest hinge loss)
// ---------------------------------------------------------------------------

/// Linear SVM: one-vs-rest hinge loss minimized by subgradient descent.
#[derive(Debug, Clone)]
pub struct LinearSvm {
    /// Subgradient-descent iterations.
    pub iterations: usize,
    /// Learning rate.
    pub lr: f64,
    /// L2 regularization strength.
    pub l2: f64,
    std: Standardizer,
    w: Vec<f64>, // (dim + 1) x k
    k: usize,
}

impl Default for LinearSvm {
    fn default() -> Self {
        LinearSvm { iterations: 300, lr: 0.2, l2: 1e-3, std: Standardizer::default(), w: Vec::new(), k: 0 }
    }
}

impl Classifier for LinearSvm {
    fn name(&self) -> &'static str {
        "LinearSVM"
    }

    fn fit(&mut self, x: &[f64], y: &[usize], n: usize, dim: usize, k: usize) {
        self.std = Standardizer::fit(x, n, dim);
        let xs = self.std.transform(x, n, dim);
        let d1 = dim + 1;
        self.k = k;
        self.w = vec![0.0; d1 * k];
        for _ in 0..self.iterations {
            let mut grad = vec![0.0; d1 * k];
            for r in 0..n {
                let row = &xs[r * dim..(r + 1) * dim];
                for c in 0..k {
                    let label = if y[r] == c { 1.0 } else { -1.0 };
                    let mut z = self.w[dim * k + c];
                    for (j, &v) in row.iter().enumerate() {
                        z += self.w[j * k + c] * v;
                    }
                    if label * z < 1.0 {
                        for (j, &v) in row.iter().enumerate() {
                            grad[j * k + c] -= label * v;
                        }
                        grad[dim * k + c] -= label;
                    }
                }
            }
            let scale = self.lr / n.max(1) as f64;
            for (wi, gi) in self.w.iter_mut().zip(&grad) {
                *wi -= scale * gi + self.lr * self.l2 * *wi;
            }
        }
    }

    fn predict(&self, x: &[f64], n: usize, dim: usize) -> Vec<usize> {
        let xs = self.std.transform(x, n, dim);
        (0..n)
            .map(|r| {
                let row = &xs[r * dim..(r + 1) * dim];
                let scores: Vec<f64> = (0..self.k)
                    .map(|c| {
                        let mut z = self.w[dim * self.k + c];
                        for (j, &v) in row.iter().enumerate() {
                            z += self.w[j * self.k + c] * v;
                        }
                        z
                    })
                    .collect();
                argmax(&scores)
            })
            .collect()
    }
}

// ---------------------------------------------------------------------------
// MLP classifier
// ---------------------------------------------------------------------------

/// MLP classifier trained with softmax cross-entropy (Adam).
pub struct MlpClassifier {
    /// Hidden width.
    pub hidden: usize,
    /// Hidden depth.
    pub depth: usize,
    /// Training epochs of full-batch Adam.
    pub epochs: usize,
    /// Learning rate.
    pub lr: f32,
    /// RNG seed for weight init.
    pub seed: u64,
    std: Standardizer,
    net: Option<(Mlp, ParamStore)>,
}

impl MlpClassifier {
    /// Creates an MLP classifier with the given architecture.
    pub fn new(hidden: usize, depth: usize, epochs: usize, lr: f32, seed: u64) -> Self {
        MlpClassifier { hidden, depth, epochs, lr, seed, std: Standardizer::default(), net: None }
    }
}

impl Default for MlpClassifier {
    fn default() -> Self {
        MlpClassifier::new(32, 2, 200, 0.01, 0)
    }
}

impl Classifier for MlpClassifier {
    fn name(&self) -> &'static str {
        "MLP"
    }

    fn fit(&mut self, x: &[f64], y: &[usize], n: usize, dim: usize, k: usize) {
        self.std = Standardizer::fit(x, n, dim);
        let xs = self.std.transform(x, n, dim);
        let xt = Tensor::from_vec(n, dim, xs.iter().map(|&v| v as f32).collect());
        let mut targets = Tensor::zeros(n, k);
        for (r, &label) in y.iter().enumerate() {
            targets.set(r, label, 1.0);
        }
        let mut rng = StdRng::seed_from_u64(self.seed);
        let mut store = ParamStore::new();
        let mlp = Mlp::new(
            &mut store,
            "clf",
            dim,
            self.hidden,
            self.depth,
            k,
            Activation::LeakyRelu(0.1),
            Activation::Linear,
            &mut rng,
        );
        let mut opt = Adam::with_betas(self.lr, 0.9, 0.999);
        for _ in 0..self.epochs {
            let mut g = Graph::new();
            let xv = g.constant(xt.clone());
            let logits = mlp.forward(&mut g, &store, xv);
            let loss = g.softmax_cross_entropy(logits, targets.clone());
            g.backward(loss);
            opt.step(&mut store, &g.param_grads());
        }
        self.net = Some((mlp, store));
    }

    fn predict(&self, x: &[f64], n: usize, dim: usize) -> Vec<usize> {
        let (mlp, store) = self.net.as_ref().expect("fit before predict");
        let xs = self.std.transform(x, n, dim);
        let xt = Tensor::from_vec(n, dim, xs.iter().map(|&v| v as f32).collect());
        let mut g = Graph::new();
        let xv = g.constant(xt);
        let logits = mlp.forward_frozen(&mut g, store, xv);
        let v = g.value(logits);
        (0..n)
            .map(|r| {
                let row = v.row_slice(r);
                let mut best = 0;
                for (i, &s) in row.iter().enumerate() {
                    if s > row[best] {
                        best = i;
                    }
                }
                best
            })
            .collect()
    }
}

/// The five classifiers of Fig. 11, in the paper's order.
pub fn standard_classifiers() -> Vec<Box<dyn Classifier>> {
    vec![
        Box::new(MlpClassifier::default()),
        Box::new(NaiveBayes::default()),
        Box::new(LogisticRegression::default()),
        Box::new(DecisionTree::default()),
        Box::new(LinearSvm::default()),
    ]
}

fn argmax(xs: &[f64]) -> usize {
    let mut best = 0;
    for (i, &v) in xs.iter().enumerate() {
        if v > xs[best] {
            best = i;
        }
    }
    best
}

fn argmax_usize(xs: &[usize]) -> usize {
    let mut best = 0;
    for (i, &v) in xs.iter().enumerate() {
        if v > xs[best] {
            best = i;
        }
    }
    best
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::features::accuracy;

    /// Two Gaussian blobs, linearly separable.
    fn blobs(n: usize) -> (Vec<f64>, Vec<usize>) {
        let mut x = Vec::with_capacity(n * 2);
        let mut y = Vec::with_capacity(n);
        let mut state = 99u64;
        let mut noise = move || {
            state = state.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
            ((state >> 32) as f64 / (1u64 << 31) as f64) - 1.0
        };
        for i in 0..n {
            let c = i % 2;
            let cx = if c == 0 { -2.0 } else { 2.0 };
            x.push(cx + noise());
            x.push(cx * 0.5 + noise());
            y.push(c);
        }
        (x, y)
    }

    /// XOR pattern — not linearly separable.
    fn xor(n: usize) -> (Vec<f64>, Vec<usize>) {
        let mut x = Vec::with_capacity(n * 2);
        let mut y = Vec::with_capacity(n);
        let mut state = 7u64;
        let mut noise = move || {
            state = state.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
            ((state >> 32) as f64 / (1u64 << 31) as f64) - 1.0
        };
        for _ in 0..n {
            let a = noise() > 0.0;
            let b = noise() > 0.0;
            x.push(if a { 1.0 } else { -1.0 } + 0.15 * noise());
            x.push(if b { 1.0 } else { -1.0 } + 0.15 * noise());
            y.push((a ^ b) as usize);
        }
        (x, y)
    }

    fn check_separable(mut clf: Box<dyn Classifier>, min_acc: f64) {
        let (x, y) = blobs(200);
        clf.fit(&x, &y, 200, 2, 2);
        let pred = clf.predict(&x, 200, 2);
        let acc = accuracy(&pred, &y);
        assert!(acc >= min_acc, "{} accuracy {acc} < {min_acc}", clf.name());
    }

    #[test]
    fn naive_bayes_separates_blobs() {
        check_separable(Box::new(NaiveBayes::default()), 0.95);
    }

    #[test]
    fn logistic_regression_separates_blobs() {
        check_separable(Box::new(LogisticRegression::default()), 0.95);
    }

    #[test]
    fn decision_tree_separates_blobs() {
        check_separable(Box::new(DecisionTree::default()), 0.95);
    }

    #[test]
    fn linear_svm_separates_blobs() {
        check_separable(Box::new(LinearSvm::default()), 0.95);
    }

    #[test]
    fn mlp_separates_blobs() {
        check_separable(Box::new(MlpClassifier::default()), 0.95);
    }

    #[test]
    fn nonlinear_models_solve_xor_linear_models_cannot() {
        let (x, y) = xor(300);
        let mut tree = DecisionTree::default();
        tree.fit(&x, &y, 300, 2, 2);
        let tree_acc = accuracy(&tree.predict(&x, 300, 2), &y);
        assert!(tree_acc > 0.9, "tree should solve XOR, got {tree_acc}");

        let mut mlp = MlpClassifier::default();
        mlp.fit(&x, &y, 300, 2, 2);
        let mlp_acc = accuracy(&mlp.predict(&x, 300, 2), &y);
        assert!(mlp_acc > 0.9, "mlp should solve XOR, got {mlp_acc}");

        let mut lr = LogisticRegression::default();
        lr.fit(&x, &y, 300, 2, 2);
        let lr_acc = accuracy(&lr.predict(&x, 300, 2), &y);
        assert!(lr_acc < 0.75, "linear model should fail XOR, got {lr_acc}");
    }

    #[test]
    fn multiclass_prediction_covers_all_classes() {
        // Three well-separated blobs.
        let mut x = Vec::new();
        let mut y = Vec::new();
        for i in 0..150 {
            let c = i % 3;
            let center = [(0.0, 0.0), (5.0, 5.0), (-5.0, 5.0)][c];
            x.push(center.0 + (i as f64 * 0.13).sin() * 0.3);
            x.push(center.1 + (i as f64 * 0.29).cos() * 0.3);
            y.push(c);
        }
        for mut clf in standard_classifiers() {
            clf.fit(&x, &y, 150, 2, 3);
            let pred = clf.predict(&x, 150, 2);
            let acc = accuracy(&pred, &y);
            assert!(acc > 0.95, "{} multiclass accuracy {acc}", clf.name());
        }
    }
}
