//! Featurization of time series objects for downstream predictors.

use dg_data::Dataset;

/// A supervised classification problem extracted from a dataset: summary
/// statistics of each object's time series as inputs, one categorical
/// attribute as the label (e.g. GCUT's end event type, Fig. 11).
#[derive(Debug, Clone)]
pub struct ClassificationTask {
    /// Row-major feature matrix, `n x dim`.
    pub x: Vec<f64>,
    /// Labels in `0..num_classes`.
    pub y: Vec<usize>,
    /// Feature dimensionality.
    pub dim: usize,
    /// Number of classes.
    pub num_classes: usize,
}

/// Per-feature summary statistics: mean, std, min, max, first, last, slope.
const STATS_PER_FEATURE: usize = 7;

/// Builds a classification task predicting attribute `attr_idx` from summary
/// statistics of every feature series (plus the normalized series length).
pub fn classification_task(dataset: &Dataset, attr_idx: usize) -> ClassificationTask {
    let k = dataset.schema.num_features();
    let num_classes = dataset.schema.attributes[attr_idx].kind.num_categories();
    assert!(num_classes >= 2, "classification needs a categorical attribute with >= 2 classes");
    let dim = k * STATS_PER_FEATURE + 1;
    let mut x = Vec::with_capacity(dataset.len() * dim);
    let mut y = Vec::with_capacity(dataset.len());
    for o in &dataset.objects {
        for j in 0..k {
            let s = o.feature_series(j);
            x.extend(series_stats(&s));
        }
        x.push(o.len() as f64 / dataset.schema.max_len.max(1) as f64);
        y.push(o.attributes[attr_idx].cat());
    }
    ClassificationTask { x, y, dim, num_classes }
}

fn series_stats(s: &[f64]) -> [f64; STATS_PER_FEATURE] {
    if s.is_empty() {
        return [0.0; STATS_PER_FEATURE];
    }
    let n = s.len() as f64;
    let mean = s.iter().sum::<f64>() / n;
    let var = s.iter().map(|v| (v - mean) * (v - mean)).sum::<f64>() / n;
    let mn = s.iter().copied().fold(f64::INFINITY, f64::min);
    let mx = s.iter().copied().fold(f64::NEG_INFINITY, f64::max);
    // Least-squares slope against t = 0..n-1.
    let tbar = (n - 1.0) / 2.0;
    let denom: f64 = (0..s.len()).map(|t| (t as f64 - tbar) * (t as f64 - tbar)).sum();
    let slope = if denom > 0.0 {
        (0..s.len()).map(|t| (t as f64 - tbar) * (s[t] - mean)).sum::<f64>() / denom
    } else {
        0.0
    };
    [mean, var.sqrt(), mn, mx, s[0], *s.last().expect("non-empty"), slope]
}

/// A supervised forecasting problem: the first `history` points of a series
/// as inputs, the next `horizon` points as targets (the WWT forecasting task
/// of Fig. 27). Each sample is normalized by its history's min/max so
/// wildly-scaled pages are comparable.
#[derive(Debug, Clone)]
pub struct ForecastTask {
    /// Row-major inputs, `n x history`.
    pub x: Vec<f64>,
    /// Row-major targets, `n x horizon`.
    pub y: Vec<f64>,
    /// History window length.
    pub history: usize,
    /// Forecast horizon.
    pub horizon: usize,
    /// Number of samples.
    pub n: usize,
}

/// Builds a forecasting task from feature `feature_idx`. Objects shorter
/// than `history + horizon` are skipped.
pub fn forecast_task(dataset: &Dataset, feature_idx: usize, history: usize, horizon: usize) -> ForecastTask {
    assert!(history > 0 && horizon > 0, "history and horizon must be positive");
    let mut x = Vec::new();
    let mut y = Vec::new();
    let mut n = 0;
    for o in &dataset.objects {
        if o.len() < history + horizon {
            continue;
        }
        let s = o.feature_series(feature_idx);
        let hist = &s[..history];
        let mn = hist.iter().copied().fold(f64::INFINITY, f64::min);
        let mx = hist.iter().copied().fold(f64::NEG_INFINITY, f64::max);
        let span = (mx - mn).max(1e-9);
        x.extend(hist.iter().map(|v| (v - mn) / span));
        y.extend(s[history..history + horizon].iter().map(|v| (v - mn) / span));
        n += 1;
    }
    ForecastTask { x, y, history, horizon, n }
}

/// Classification accuracy.
pub fn accuracy(pred: &[usize], truth: &[usize]) -> f64 {
    assert_eq!(pred.len(), truth.len(), "prediction/label length mismatch");
    if pred.is_empty() {
        return 0.0;
    }
    pred.iter().zip(truth).filter(|(p, t)| p == t).count() as f64 / pred.len() as f64
}

/// Pooled coefficient of determination `R²` over all outputs — the Fig. 27
/// metric. Can be arbitrarily negative for bad fits; 1 is perfect.
pub fn r2_score(pred: &[f64], truth: &[f64]) -> f64 {
    assert_eq!(pred.len(), truth.len(), "prediction/target length mismatch");
    assert!(!truth.is_empty(), "r2 of empty sample");
    let mean = truth.iter().sum::<f64>() / truth.len() as f64;
    let ss_tot: f64 = truth.iter().map(|v| (v - mean) * (v - mean)).sum();
    let ss_res: f64 = pred.iter().zip(truth).map(|(p, t)| (p - t) * (p - t)).sum();
    if ss_tot <= 0.0 {
        return if ss_res <= 1e-12 { 1.0 } else { f64::NEG_INFINITY };
    }
    1.0 - ss_res / ss_tot
}

#[cfg(test)]
mod tests {
    use super::*;
    use dg_data::{FieldKind, FieldSpec, Schema, TimeSeriesObject, Value};

    fn demo() -> Dataset {
        let schema = Schema::new(
            vec![FieldSpec::new("cls", FieldKind::categorical(["up", "down"]))],
            vec![FieldSpec::new("x", FieldKind::continuous(-100.0, 100.0))],
            16,
        );
        let objects = (0..10)
            .map(|i| {
                let up = i % 2 == 0;
                TimeSeriesObject {
                    attributes: vec![Value::Cat(if up { 0 } else { 1 })],
                    records: (0..16)
                        .map(|t| vec![Value::Cont(if up { t as f64 } else { -(t as f64) })])
                        .collect(),
                }
            })
            .collect();
        Dataset::new(schema, objects)
    }

    #[test]
    fn classification_task_shapes() {
        let t = classification_task(&demo(), 0);
        assert_eq!(t.dim, 8);
        assert_eq!(t.y.len(), 10);
        assert_eq!(t.x.len(), 80);
        assert_eq!(t.num_classes, 2);
    }

    #[test]
    fn slope_feature_separates_classes() {
        let t = classification_task(&demo(), 0);
        // Slope is stat index 6: positive for "up" class, negative for "down".
        for (i, &label) in t.y.iter().enumerate() {
            let slope = t.x[i * t.dim + 6];
            if label == 0 {
                assert!(slope > 0.5);
            } else {
                assert!(slope < -0.5);
            }
        }
    }

    #[test]
    fn forecast_task_windows_and_normalization() {
        let t = forecast_task(&demo(), 0, 12, 4);
        assert_eq!(t.n, 10);
        assert_eq!(t.x.len(), 120);
        assert_eq!(t.y.len(), 40);
        // History of "up" series is 0..11 normalized to [0,1].
        assert!((t.x[0] - 0.0).abs() < 1e-12);
        assert!((t.x[11] - 1.0).abs() < 1e-12);
    }

    #[test]
    fn forecast_skips_short_series() {
        let t = forecast_task(&demo(), 0, 15, 4);
        assert_eq!(t.n, 0);
    }

    #[test]
    fn accuracy_and_r2() {
        assert_eq!(accuracy(&[0, 1, 1], &[0, 1, 0]), 2.0 / 3.0);
        assert!((r2_score(&[1.0, 2.0, 3.0], &[1.0, 2.0, 3.0]) - 1.0).abs() < 1e-12);
        // Predicting the mean gives R² = 0.
        let r = r2_score(&[2.0, 2.0, 2.0], &[1.0, 2.0, 3.0]);
        assert!(r.abs() < 1e-12);
    }
}
