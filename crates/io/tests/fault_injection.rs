//! Property-style fault-injection suite for the artifact store.
//!
//! The invariant under test, from the crate docs: **no injected crash
//! point leaves the store unrecoverable.** A scenario of rotated
//! checkpoint writes runs against the fault backend; for every single
//! backend operation we simulate dying there (clean kill and torn-write
//! kill), materialize the surviving filesystem under every combination of
//! data-loss and directory-entry-loss semantics, and assert that recovery
//!
//! * never errors and never returns corrupted payload bytes,
//! * returns a checkpoint at least as new as the newest `put_numbered`
//!   that had reported success before the death, and
//! * leaves a store that accepts further writes.

use std::path::Path;

use dg_io::{ArtifactStore, DataLossPolicy, DirLossPolicy, ErrorKind, FaultBackend, FaultPlan, MemBackend};

const NUM_CKPTS: u64 = 6;
const STORE_DIR: &str = "store";
const FAMILY: &str = "ckpt";

/// Deterministic payload per sequence number; sizes straddle the store's
/// append chunking so some writes take several operations.
fn payload(seq: u64) -> Vec<u8> {
    let mut p = format!("snapshot {seq} ").into_bytes();
    let filler = (seq as usize) * 1500;
    p.extend((0..filler).map(|i| (i as u8).wrapping_mul(31).wrapping_add(seq as u8)));
    p
}

/// Runs the checkpoint scenario, tolerating transient errors (a real
/// training loop logs a failed checkpoint and keeps going) and stopping
/// at a simulated death. Returns the newest seq whose write reported
/// success.
fn run_scenario(fb: &FaultBackend) -> Option<u64> {
    let store = match ArtifactStore::open(fb.clone(), STORE_DIR) {
        Ok(s) => s.with_retain(3),
        Err(_) => return None,
    };
    let mut committed = None;
    for seq in 1..=NUM_CKPTS {
        match store.put_numbered(FAMILY, seq, &payload(seq)) {
            Ok(_) => committed = Some(seq),
            Err(e) if e.kind == ErrorKind::Crashed => break,
            Err(_) => {}
        }
    }
    committed
}

/// Asserts the recovery invariant on the post-crash filesystem.
fn assert_recoverable(
    mem: &MemBackend,
    data: DataLossPolicy,
    dir: DirLossPolicy,
    committed: Option<u64>,
    label: &str,
) {
    let disk = mem.materialize_crash(data, dir);
    let store = ArtifactStore::open(disk, STORE_DIR).expect("reopen after crash");
    let (latest, _skipped) = store
        .latest_valid(FAMILY)
        .unwrap_or_else(|e| panic!("{label} [{data:?}/{dir:?}]: recovery errored: {e}"));
    match (&latest, committed) {
        (Some(v), Some(c)) => {
            assert!(
                v.seq >= c,
                "{label} [{data:?}/{dir:?}]: recovered seq {} older than committed {c}",
                v.seq
            );
            assert_eq!(
                v.payload,
                payload(v.seq),
                "{label} [{data:?}/{dir:?}]: silent corruption at seq {}",
                v.seq
            );
        }
        (Some(v), None) => {
            assert_eq!(
                v.payload,
                payload(v.seq),
                "{label} [{data:?}/{dir:?}]: silent corruption at seq {}",
                v.seq
            );
        }
        (None, Some(c)) => panic!("{label} [{data:?}/{dir:?}]: committed checkpoint {c} lost"),
        (None, None) => {}
    }
    // The recovered store must keep working.
    let next = committed.unwrap_or(0) + 100;
    store
        .put_numbered(FAMILY, next, &payload(next))
        .unwrap_or_else(|e| panic!("{label} [{data:?}/{dir:?}]: recovered store rejects writes: {e}"));
    let (latest, _) = store.latest_valid(FAMILY).unwrap();
    assert_eq!(latest.unwrap().seq, next, "{label} [{data:?}/{dir:?}]");
}

/// How many backend operations the fault-free scenario performs — the
/// crash-point surface the other tests enumerate.
fn total_ops() -> u64 {
    let fb = FaultBackend::new(MemBackend::new(), FaultPlan::new());
    let committed = run_scenario(&fb);
    assert_eq!(committed, Some(NUM_CKPTS), "fault-free run must commit everything");
    fb.ops_seen()
}

#[test]
fn every_crash_point_is_recoverable() {
    let n = total_ops();
    assert!(n > 20, "scenario too small to be interesting: {n} ops");
    for k in 0..n {
        let fb = FaultBackend::new(MemBackend::new(), FaultPlan::new().crash_at(k));
        let committed = run_scenario(&fb);
        assert!(fb.crashed(), "plan crash_at({k}) never fired");
        for data in DataLossPolicy::ALL {
            for dir in DirLossPolicy::ALL {
                assert_recoverable(&fb.mem(), data, dir, committed, &format!("crash at op {k}"));
            }
        }
    }
}

#[test]
fn every_torn_write_crash_point_is_recoverable() {
    let n = total_ops();
    for k in 0..n {
        let fb = FaultBackend::new(MemBackend::new(), FaultPlan::new().torn_at(k, 7));
        let committed = run_scenario(&fb);
        assert!(fb.crashed(), "plan torn_at({k}) never fired");
        for data in DataLossPolicy::ALL {
            for dir in DirLossPolicy::ALL {
                assert_recoverable(&fb.mem(), data, dir, committed, &format!("torn write at op {k}"));
            }
        }
    }
}

#[test]
fn every_transient_error_point_leaves_a_consistent_store() {
    let n = total_ops();
    for kind in [ErrorKind::NoSpace, ErrorKind::Io] {
        for k in 0..n {
            let fb = FaultBackend::new(MemBackend::new(), FaultPlan::new().fail_at(k, kind));
            let committed = run_scenario(&fb);
            assert!(!fb.crashed());
            // No crash: the live filesystem *is* the disk state.
            let store = ArtifactStore::open(fb.mem(), STORE_DIR).unwrap();
            let (latest, _) = store
                .latest_valid(FAMILY)
                .unwrap_or_else(|e| panic!("{kind:?} at op {k}: recovery errored: {e}"));
            match (&latest, committed) {
                (Some(v), Some(c)) => {
                    assert!(v.seq >= c, "{kind:?} at op {k}: lost committed {c}");
                    assert_eq!(v.payload, payload(v.seq), "{kind:?} at op {k}: corruption");
                }
                (None, Some(c)) => panic!("{kind:?} at op {k}: committed {c} lost"),
                _ => {}
            }
            // One transient fault must cost at most one checkpoint.
            if k > 0 {
                let c = committed.unwrap_or(0);
                assert!(
                    c >= NUM_CKPTS - 1,
                    "{kind:?} at op {k}: only {c} of {NUM_CKPTS} checkpoints committed"
                );
            }
        }
    }
}

#[test]
fn seeded_multi_fault_schedules_are_recoverable() {
    let n = total_ops();
    for seed in 0..24 {
        let fb = FaultBackend::new(MemBackend::new(), FaultPlan::seeded(seed, n));
        let committed = run_scenario(&fb);
        for data in DataLossPolicy::ALL {
            for dir in DirLossPolicy::ALL {
                assert_recoverable(&fb.mem(), data, dir, committed, &format!("seeded schedule {seed}"));
            }
        }
    }
}

#[test]
fn recovery_reports_what_it_skipped() {
    // Belt-and-braces beyond the enumeration: hand-corrupt the newest
    // checkpoint and check the skip report names it.
    let mem = MemBackend::new();
    let store = ArtifactStore::open(mem.clone(), STORE_DIR).unwrap();
    store.put_numbered(FAMILY, 1, &payload(1)).unwrap();
    let newest = store.put_numbered(FAMILY, 2, &payload(2)).unwrap().path;
    let bytes = mem.raw(&newest).unwrap();
    mem.plant(&newest, &bytes[..bytes.len() / 2]);

    let (latest, skipped) = store.latest_valid(FAMILY).unwrap();
    assert_eq!(latest.unwrap().seq, 1);
    assert_eq!(skipped.len(), 1);
    assert_eq!(
        skipped[0].path,
        Path::new(STORE_DIR).join(ArtifactStore::<MemBackend>::artifact_name(FAMILY, 2))
    );
    assert!(!skipped[0].reason.is_empty());
}
