//! Versioned artifact envelope with a length + CRC32 integrity check.
//!
//! Layout (all integers little-endian):
//!
//! ```text
//! offset  size  field
//! 0       4     magic  b"DGAR"
//! 4       4     format version (currently 1)
//! 8       8     payload length in bytes
//! 16      n     payload
//! 16+n    4     CRC32 (IEEE) over bytes [0, 16+n)
//! ```
//!
//! The trailing checksum covers the header too, so a torn tail, a
//! truncated header, or a bit flip anywhere in the file is detected.
//! Decoding never panics: every malformed input maps to a structured
//! [`EnvelopeError`].

/// Magic bytes identifying a dg artifact envelope.
pub const MAGIC: [u8; 4] = *b"DGAR";

/// Current envelope format version.
pub const VERSION: u32 = 1;

/// Fixed bytes before the payload: magic + version + length.
pub const HEADER_LEN: usize = 16;

/// Trailing CRC32 footer size.
pub const FOOTER_LEN: usize = 4;

/// Why a byte string failed to decode as an envelope.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum EnvelopeError {
    /// Shorter than header + footer: a torn or empty file.
    Truncated {
        /// Bytes actually present.
        len: usize,
        /// Minimum bytes any valid envelope has.
        need: usize,
    },
    /// First four bytes are not [`MAGIC`].
    BadMagic {
        /// The bytes found where the magic was expected.
        found: [u8; 4],
    },
    /// Version field is newer than this build understands.
    UnsupportedVersion {
        /// The version recorded in the header.
        found: u32,
    },
    /// Header-declared payload length disagrees with the file size.
    LengthMismatch {
        /// Payload length declared in the header.
        declared: u64,
        /// Payload bytes actually present.
        actual: u64,
    },
    /// Stored CRC32 does not match the recomputed one.
    ChecksumMismatch {
        /// CRC32 recorded in the footer.
        stored: u32,
        /// CRC32 recomputed over the bytes.
        computed: u32,
    },
}

impl std::fmt::Display for EnvelopeError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            EnvelopeError::Truncated { len, need } => {
                write!(f, "truncated envelope: {len} bytes, need at least {need}")
            }
            EnvelopeError::BadMagic { found } => write!(f, "bad magic {found:?}"),
            EnvelopeError::UnsupportedVersion { found } => {
                write!(f, "unsupported envelope version {found} (max {VERSION})")
            }
            EnvelopeError::LengthMismatch { declared, actual } => {
                write!(f, "length mismatch: header declares {declared} payload bytes, file holds {actual}")
            }
            EnvelopeError::ChecksumMismatch { stored, computed } => {
                write!(f, "checksum mismatch: stored {stored:#010x}, computed {computed:#010x}")
            }
        }
    }
}

impl std::error::Error for EnvelopeError {}

const CRC_TABLE: [u32; 256] = crc_table();

const fn crc_table() -> [u32; 256] {
    let mut table = [0u32; 256];
    let mut i = 0;
    while i < 256 {
        let mut c = i as u32;
        let mut k = 0;
        while k < 8 {
            c = if c & 1 != 0 { 0xEDB8_8320 ^ (c >> 1) } else { c >> 1 };
            k += 1;
        }
        table[i] = c;
        i += 1;
    }
    table
}

/// CRC32 (IEEE 802.3, reflected, init/xorout `0xFFFFFFFF`) of `data`.
pub fn crc32(data: &[u8]) -> u32 {
    let mut c = 0xFFFF_FFFFu32;
    for &b in data {
        c = CRC_TABLE[((c ^ b as u32) & 0xFF) as usize] ^ (c >> 8);
    }
    c ^ 0xFFFF_FFFF
}

/// Wraps `payload` in a version-1 envelope.
pub fn encode(payload: &[u8]) -> Vec<u8> {
    let mut out = Vec::with_capacity(HEADER_LEN + payload.len() + FOOTER_LEN);
    out.extend_from_slice(&MAGIC);
    out.extend_from_slice(&VERSION.to_le_bytes());
    out.extend_from_slice(&(payload.len() as u64).to_le_bytes());
    out.extend_from_slice(payload);
    let crc = crc32(&out);
    out.extend_from_slice(&crc.to_le_bytes());
    out
}

/// Validates `bytes` as an envelope and returns the payload.
pub fn decode(bytes: &[u8]) -> Result<Vec<u8>, EnvelopeError> {
    let min = HEADER_LEN + FOOTER_LEN;
    if bytes.len() < min {
        return Err(EnvelopeError::Truncated { len: bytes.len(), need: min });
    }
    let magic: [u8; 4] = bytes[0..4].try_into().unwrap();
    if magic != MAGIC {
        return Err(EnvelopeError::BadMagic { found: magic });
    }
    let version = u32::from_le_bytes(bytes[4..8].try_into().unwrap());
    if version == 0 || version > VERSION {
        return Err(EnvelopeError::UnsupportedVersion { found: version });
    }
    let declared = u64::from_le_bytes(bytes[8..16].try_into().unwrap());
    let actual = (bytes.len() - min) as u64;
    if declared != actual {
        return Err(EnvelopeError::LengthMismatch { declared, actual });
    }
    let body_end = bytes.len() - FOOTER_LEN;
    let stored = u32::from_le_bytes(bytes[body_end..].try_into().unwrap());
    let computed = crc32(&bytes[..body_end]);
    if stored != computed {
        return Err(EnvelopeError::ChecksumMismatch { stored, computed });
    }
    Ok(bytes[HEADER_LEN..body_end].to_vec())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn crc32_check_value() {
        // Standard CRC-32/ISO-HDLC check value.
        assert_eq!(crc32(b"123456789"), 0xCBF4_3926);
        assert_eq!(crc32(b""), 0);
    }

    #[test]
    fn roundtrip() {
        for payload in [&b""[..], b"x", b"hello world", &[0u8; 1024][..]] {
            let enc = encode(payload);
            assert_eq!(decode(&enc).unwrap(), payload);
        }
    }

    #[test]
    fn every_truncation_is_detected() {
        let enc = encode(b"some checkpoint payload");
        for cut in 0..enc.len() {
            let err = decode(&enc[..cut]).unwrap_err();
            match err {
                EnvelopeError::Truncated { .. }
                | EnvelopeError::LengthMismatch { .. }
                | EnvelopeError::ChecksumMismatch { .. } => {}
                other => panic!("truncation at {cut} gave unexpected {other:?}"),
            }
        }
    }

    #[test]
    fn every_single_bit_flip_is_detected() {
        let enc = encode(b"bit flip target");
        for byte in 0..enc.len() {
            for bit in 0..8 {
                let mut bad = enc.clone();
                bad[byte] ^= 1 << bit;
                assert!(decode(&bad).is_err(), "flip at byte {byte} bit {bit} undetected");
            }
        }
    }

    #[test]
    fn bad_magic_and_version() {
        let mut enc = encode(b"p");
        enc[0] = b'X';
        assert!(matches!(decode(&enc).unwrap_err(), EnvelopeError::BadMagic { .. }));

        let mut enc = encode(b"p");
        enc[4..8].copy_from_slice(&99u32.to_le_bytes());
        assert!(matches!(decode(&enc).unwrap_err(), EnvelopeError::UnsupportedVersion { found: 99 }));
    }

    #[test]
    fn appended_garbage_is_detected() {
        let mut enc = encode(b"p");
        enc.push(0xAB);
        assert!(matches!(decode(&enc).unwrap_err(), EnvelopeError::LengthMismatch { .. }));
    }
}
