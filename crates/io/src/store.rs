//! The artifact store: atomic envelope-wrapped writes, numbered rotation
//! with a retain-N policy, and newest-first corruption-aware recovery.
//!
//! Write discipline for every durable artifact:
//!
//! 1. write the full [`envelope`](crate::envelope) to a hidden temp
//!    sibling (`.{name}.tmp`),
//! 2. `fsync` the temp file and close it,
//! 3. `rename` it over the final name,
//! 4. `fsync` the parent directory.
//!
//! A crash before the rename leaves only debris the recovery scan never
//! looks at; a crash after it leaves a fully-synced, CRC-valid artifact.
//! Recovery therefore never trusts names or pointers: it scans the
//! numbered candidates newest-first and takes the first one whose
//! envelope validates, reporting everything it skipped.

use std::path::{Path, PathBuf};

use crate::backend::{Backend, StdBackend};
use crate::envelope;
use crate::error::{ErrorKind, StoreError};

/// File extension for numbered, envelope-wrapped artifacts.
pub const ARTIFACT_EXT: &str = "dgart";

const CHUNK: usize = 4096;

/// Writes `bytes` to `path` via a temp sibling + fsync + rename, using
/// `backend` for every filesystem effect.
pub fn atomic_write_with<B: Backend>(backend: &B, path: &Path, bytes: &[u8]) -> Result<(), StoreError> {
    let name = path
        .file_name()
        .and_then(|n| n.to_str())
        .ok_or_else(|| StoreError::new("atomic_write", path, ErrorKind::Io, "path has no file name"))?;
    let dir = path.parent().unwrap_or_else(|| Path::new("")).to_path_buf();
    let tmp = dir.join(format!(".{name}.tmp"));

    let id = backend.create(&tmp)?;
    let mut wrote = Ok(());
    for chunk in bytes.chunks(CHUNK.max(1)) {
        wrote = backend.append(id, chunk);
        if wrote.is_err() {
            break;
        }
    }
    let wrote = wrote.and_then(|()| backend.sync_file(id));
    // Close even on failure so the backend does not leak the handle; the
    // write error is the one worth reporting.
    let closed = backend.close(id);
    if let Err(e) = wrote.and(closed) {
        // Best-effort cleanup: a failed attempt (ENOSPC being the likely
        // culprit) must not leave temp debris eating the very disk space
        // that made it fail.
        let _ = backend.remove(&tmp);
        return Err(e);
    }
    if let Err(e) = backend.rename(&tmp, path) {
        let _ = backend.remove(&tmp);
        return Err(e);
    }
    backend.sync_dir(&dir)?;
    Ok(())
}

/// [`atomic_write_with`] against the real filesystem. This is the drop-in
/// replacement for `fs::write` (which can tear on crash) on persistence
/// paths that must stay plain bytes (JSON reports read by `jq`, released
/// models), where the envelope would get in consumers' way.
pub fn atomic_write(path: &Path, bytes: &[u8]) -> Result<(), StoreError> {
    atomic_write_with(&StdBackend::new(), path, bytes)
}

/// A recovered artifact: the newest candidate whose envelope validated.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ValidArtifact {
    /// Sequence number parsed from the file name.
    pub seq: u64,
    /// Full path of the recovered file.
    pub path: PathBuf,
    /// The envelope payload, bitwise as written.
    pub payload: Vec<u8>,
}

/// A candidate the recovery scan rejected, and why.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SkippedArtifact {
    /// Full path of the rejected file.
    pub path: PathBuf,
    /// Human-readable reason (envelope finding, unreadable, bad name).
    pub reason: String,
}

/// What a [`ArtifactStore::put_numbered`] call durably achieved beyond
/// the artifact itself. The artifact write is all-or-error; the `latest`
/// pointer and retention pruning are best-effort because recovery never
/// depends on them.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RotationOutcome {
    /// Path of the durably-committed artifact.
    pub path: PathBuf,
    /// Whether the `{family}.latest` hint was updated.
    pub pointer_updated: bool,
    /// Old artifacts removed by the retain-N policy.
    pub pruned: usize,
    /// Old artifacts that could not be removed (retried next rotation).
    pub prune_failures: usize,
}

/// Crash-safe artifact store rooted at one directory.
#[derive(Debug)]
pub struct ArtifactStore<B: Backend> {
    backend: B,
    dir: PathBuf,
    retain: usize,
}

impl ArtifactStore<StdBackend> {
    /// Opens a store on the real filesystem.
    pub fn open_std(dir: impl Into<PathBuf>) -> Result<Self, StoreError> {
        Self::open(StdBackend::new(), dir)
    }
}

impl<B: Backend> ArtifactStore<B> {
    /// Opens (creating if needed) a store rooted at `dir`.
    pub fn open(backend: B, dir: impl Into<PathBuf>) -> Result<Self, StoreError> {
        let dir = dir.into();
        backend.create_dir_all(&dir)?;
        Ok(ArtifactStore { backend, dir, retain: 3 })
    }

    /// Sets the retain-N rotation policy (keep the `n` newest artifacts
    /// per family; minimum 1).
    pub fn with_retain(mut self, n: usize) -> Self {
        self.retain = n.max(1);
        self
    }

    /// The store's root directory.
    pub fn dir(&self) -> &Path {
        &self.dir
    }

    /// The backend, for callers that need sibling writes with the same
    /// fault surface.
    pub fn backend(&self) -> &B {
        &self.backend
    }

    /// Atomically writes an envelope-wrapped named artifact.
    pub fn put(&self, name: &str, payload: &[u8]) -> Result<PathBuf, StoreError> {
        let path = self.dir.join(name);
        atomic_write_with(&self.backend, &path, &envelope::encode(payload))?;
        Ok(path)
    }

    /// Reads and validates a named artifact, returning its payload.
    pub fn get(&self, name: &str) -> Result<Vec<u8>, StoreError> {
        let path = self.dir.join(name);
        let bytes = self.backend.read(&path)?;
        envelope::decode(&bytes).map_err(|e| StoreError::new("get", &path, ErrorKind::Corrupt, e.to_string()))
    }

    /// File name of sequence `seq` in `family`.
    pub fn artifact_name(family: &str, seq: u64) -> String {
        format!("{family}-{seq:08}.{ARTIFACT_EXT}")
    }

    /// Durably commits `payload` as `{family}-{seq:08}.dgart`, then
    /// best-effort updates the `{family}.latest` hint and prunes beyond
    /// the retain-N policy.
    ///
    /// An `Ok` return guarantees the artifact itself survives any
    /// subsequent crash; pointer/prune outcomes ride along in the
    /// [`RotationOutcome`] for callers that want to warn about them.
    pub fn put_numbered(
        &self,
        family: &str,
        seq: u64,
        payload: &[u8],
    ) -> Result<RotationOutcome, StoreError> {
        let path = self.put(&Self::artifact_name(family, seq), payload)?;
        let pointer_updated =
            self.put(&format!("{family}.latest"), Self::artifact_name(family, seq).as_bytes()).is_ok();
        let (pruned, prune_failures) = self.prune(family);
        Ok(RotationOutcome { path, pointer_updated, pruned, prune_failures })
    }

    /// The sequence number the `{family}.latest` hint points at, if the
    /// hint exists, validates, and parses. Purely advisory: recovery
    /// ([`Self::latest_valid`]) never reads it.
    pub fn latest_hint(&self, family: &str) -> Option<u64> {
        let payload = self.get(&format!("{family}.latest")).ok()?;
        let name = String::from_utf8(payload).ok()?;
        Self::parse_seq(family, &name)
    }

    /// Scans `family`'s numbered artifacts newest-first and returns the
    /// first one whose envelope validates, plus every newer candidate the
    /// scan had to skip (truncated, bit-flipped, unreadable).
    ///
    /// `Ok((None, skipped))` means no valid artifact exists — including
    /// the store directory not existing at all, which is how a fresh run
    /// with nothing to resume presents.
    pub fn latest_valid(
        &self,
        family: &str,
    ) -> Result<(Option<ValidArtifact>, Vec<SkippedArtifact>), StoreError> {
        let mut skipped = Vec::new();
        for (seq, path) in self.candidates(family)? {
            match self.read_envelope(&path) {
                Ok(payload) => return Ok((Some(ValidArtifact { seq, path, payload }), skipped)),
                Err(e) => skipped.push(SkippedArtifact { path, reason: e.detail }),
            }
        }
        Ok((None, skipped))
    }

    /// Resolves the newest valid artifact of `family`, preferring the
    /// advisory `{family}.latest` pointer — a single envelope read, the
    /// hot-reload fast path — and falling back to the authoritative
    /// newest-first scan ([`Self::latest_valid`]) whenever the pointer is
    /// missing, corrupt, unparsable, or dangling.
    ///
    /// A merely-missing pointer is silent (pre-pointer stores and fresh
    /// directories are normal); any other pointer defect is reported as a
    /// [`SkippedArtifact`] on the pointer's path, so hot-reload callers
    /// get a structured reason instead of an error. Note the pointer is
    /// *trusted when followable*: a stale-but-valid pointer resolves to
    /// its target even if newer artifacts exist, because advancing the
    /// pointer is exactly the publisher's "switch now" signal.
    pub fn resolve_latest(
        &self,
        family: &str,
    ) -> Result<(Option<ValidArtifact>, Vec<SkippedArtifact>), StoreError> {
        let pointer = self.dir.join(format!("{family}.latest"));
        let mut skipped = Vec::new();
        match self.backend.read(&pointer) {
            Err(e) if e.kind == ErrorKind::NotFound => {}
            Err(e) => skipped.push(SkippedArtifact {
                path: pointer.clone(),
                reason: format!("latest pointer unreadable: {}", e.detail),
            }),
            Ok(bytes) => match envelope::decode(&bytes) {
                Err(e) => skipped.push(SkippedArtifact {
                    path: pointer.clone(),
                    reason: format!("latest pointer corrupt: {e}"),
                }),
                Ok(payload) => {
                    let name = String::from_utf8(payload).ok();
                    let seq = name.as_deref().and_then(|n| Self::parse_seq(family, n.trim()));
                    match (name, seq) {
                        (Some(name), Some(seq)) => {
                            let target = self.dir.join(name.trim());
                            match self.read_envelope(&target) {
                                Ok(payload) => {
                                    return Ok((Some(ValidArtifact { seq, path: target, payload }), skipped))
                                }
                                Err(e) => skipped.push(SkippedArtifact {
                                    path: pointer.clone(),
                                    reason: format!(
                                        "latest pointer target {} unusable: {}",
                                        target.display(),
                                        e.detail
                                    ),
                                }),
                            }
                        }
                        _ => skipped.push(SkippedArtifact {
                            path: pointer.clone(),
                            reason: "latest pointer payload is not a valid artifact name".into(),
                        }),
                    }
                }
            },
        }
        let (valid, scan_skipped) = self.latest_valid(family)?;
        skipped.extend(scan_skipped);
        Ok((valid, skipped))
    }

    /// Numbered candidates of `family`, newest-first, without reading
    /// them: `(seq, path)`. Membership requires the whole name to parse
    /// as `{family}-{digits}.dgart`, so a sibling family whose name
    /// extends this one (`ckpt-best-…` vs `ckpt`) is never mistaken for
    /// it. A missing store directory is an empty list, not an error.
    /// This is the scan [`Self::latest_valid`] walks; callers whose
    /// payloads need validation beyond the envelope (e.g. JSON parsing)
    /// drive it themselves to keep skipping to older candidates.
    pub fn candidates(&self, family: &str) -> Result<Vec<(u64, PathBuf)>, StoreError> {
        let entries = match self.backend.list(&self.dir) {
            Ok(e) => e,
            Err(e) if e.kind == ErrorKind::NotFound => return Ok(Vec::new()),
            Err(e) => return Err(e),
        };
        let mut candidates: Vec<(u64, PathBuf)> = Vec::new();
        for path in entries {
            let Some(name) = path.file_name().and_then(|n| n.to_str()) else { continue };
            let Some(seq) = Self::parse_seq(family, name) else { continue };
            candidates.push((seq, path));
        }
        candidates.sort_by_key(|(seq, _)| std::cmp::Reverse(*seq));
        Ok(candidates)
    }

    /// Reads one artifact by full path and validates its envelope.
    pub fn read_envelope(&self, path: &Path) -> Result<Vec<u8>, StoreError> {
        let bytes = self.backend.read(path)?;
        envelope::decode(&bytes)
            .map_err(|e| StoreError::new("read_envelope", path, ErrorKind::Corrupt, e.to_string()))
    }

    /// Best-effort removal of everything beyond the retain-N *newest
    /// artifacts* (a count, not a sequence-number distance — sparse
    /// sequences like 2, 4, 6 keep the full configured depth). Returns
    /// `(removed, failures)`.
    fn prune(&self, family: &str) -> (usize, usize) {
        let Ok(candidates) = self.candidates(family) else { return (0, 0) };
        let mut removed = 0;
        let mut failures = 0;
        for (_, path) in candidates.into_iter().skip(self.retain) {
            match self.backend.remove(&path) {
                Ok(()) => removed += 1,
                Err(_) => failures += 1,
            }
        }
        if removed > 0 {
            let _ = self.backend.sync_dir(&self.dir);
        }
        (removed, failures)
    }

    fn parse_seq(family: &str, name: &str) -> Option<u64> {
        let digits =
            name.strip_prefix(family)?.strip_prefix('-')?.strip_suffix(&format!(".{ARTIFACT_EXT}"))?;
        if digits.is_empty() || !digits.bytes().all(|b| b.is_ascii_digit()) {
            return None;
        }
        digits.parse().ok()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fault::MemBackend;

    fn store() -> ArtifactStore<MemBackend> {
        ArtifactStore::open(MemBackend::new(), "store").unwrap()
    }

    #[test]
    fn put_get_roundtrip() {
        let s = store();
        s.put("model.json", b"{\"w\":1}").unwrap();
        assert_eq!(s.get("model.json").unwrap(), b"{\"w\":1}");
    }

    #[test]
    fn get_reports_corruption_not_garbage() {
        let s = store();
        let path = s.put("model.json", b"payload").unwrap();
        let mut bytes = s.backend().raw(&path).unwrap();
        let mid = bytes.len() / 2;
        bytes[mid] ^= 0x40;
        s.backend().plant(&path, &bytes);
        assert_eq!(s.get("model.json").unwrap_err().kind, ErrorKind::Corrupt);
    }

    #[test]
    fn rotation_prunes_and_updates_pointer() {
        let s = store().with_retain(2);
        for seq in 1..=5 {
            let out = s.put_numbered("ckpt", seq, format!("payload {seq}").as_bytes()).unwrap();
            assert!(out.pointer_updated);
            assert_eq!(out.prune_failures, 0);
        }
        let (latest, skipped) = s.latest_valid("ckpt").unwrap();
        assert_eq!(latest.as_ref().unwrap().seq, 5);
        assert_eq!(latest.unwrap().payload, b"payload 5");
        assert!(skipped.is_empty());
        assert_eq!(s.latest_hint("ckpt"), Some(5));
        // Only the two newest remain.
        assert!(s.get(&ArtifactStore::<MemBackend>::artifact_name("ckpt", 3)).is_err());
        assert!(s.get(&ArtifactStore::<MemBackend>::artifact_name("ckpt", 4)).is_ok());
    }

    #[test]
    fn retain_counts_artifacts_not_sequence_distance() {
        // Sparse sequences (e.g. --checkpoint-every 2) must still keep
        // the full configured fallback depth.
        let s = store(); // default retain 3
        for seq in [2u64, 4, 6] {
            let out = s.put_numbered("ckpt", seq, b"x").unwrap();
            assert_eq!(out.pruned, 0, "3 artifacts fit the retain-3 policy");
        }
        let out = s.put_numbered("ckpt", 8, b"x").unwrap();
        assert_eq!((out.pruned, out.prune_failures), (1, 0));
        let seqs: Vec<u64> = s.candidates("ckpt").unwrap().into_iter().map(|(q, _)| q).collect();
        assert_eq!(seqs, vec![8, 6, 4]);
    }

    #[test]
    fn sibling_family_with_extending_name_is_not_a_candidate() {
        let s = store();
        s.put_numbered("ckpt", 1, b"plain").unwrap();
        s.put_numbered("ckpt-best", 7, b"best").unwrap();
        let cands = s.candidates("ckpt").unwrap();
        assert_eq!(cands.len(), 1, "ckpt-best-… must not match family ckpt: {cands:?}");
        let (latest, skipped) = s.latest_valid("ckpt").unwrap();
        assert_eq!(latest.unwrap().seq, 1);
        assert!(skipped.is_empty(), "no phantom skips from the sibling family: {skipped:?}");
        // And the sibling family still finds its own artifacts.
        let (best, _) = s.latest_valid("ckpt-best").unwrap();
        assert_eq!(best.unwrap().payload, b"best");
        // Pruning one family never touches the other.
        let s = s.with_retain(1);
        for seq in 2..=4 {
            s.put_numbered("ckpt", seq, b"x").unwrap();
        }
        assert_eq!(s.latest_valid("ckpt-best").unwrap().0.unwrap().seq, 7);
    }

    #[test]
    fn failed_write_leaves_no_temp_debris() {
        use crate::fault::{FaultBackend, FaultPlan};
        // Ops: 0 create, 1 append, 2 sync_file, 3 close, 4 rename.
        for fail_op in [1u64, 2, 4] {
            let mem = MemBackend::new();
            mem.create_dir_all(Path::new("d")).unwrap();
            let fb = FaultBackend::new(mem.clone(), FaultPlan::new().fail_at(fail_op, ErrorKind::NoSpace));
            let err = atomic_write_with(&fb, Path::new("d/report.json"), b"payload").unwrap_err();
            assert_eq!(err.kind, ErrorKind::NoSpace);
            assert!(
                mem.raw(Path::new("d/.report.json.tmp")).is_none(),
                "fault at op {fail_op} left temp debris behind"
            );
            assert!(mem.raw(Path::new("d/report.json")).is_none());
        }
    }

    #[test]
    fn recovery_skips_corrupt_newest_and_lands_on_previous() {
        let s = store().with_retain(4);
        s.put_numbered("ckpt", 1, b"one").unwrap();
        s.put_numbered("ckpt", 2, b"two").unwrap();
        let newest = s.put_numbered("ckpt", 3, b"three").unwrap().path;

        // Truncate the newest: CRC/length catches it.
        let bytes = s.backend().raw(&newest).unwrap();
        s.backend().plant(&newest, &bytes[..bytes.len() - 5]);
        let (latest, skipped) = s.latest_valid("ckpt").unwrap();
        assert_eq!(latest.unwrap().payload, b"two");
        assert_eq!(skipped.len(), 1);
        assert_eq!(skipped[0].path, newest);

        // Bit-flip checkpoint 2 as well: falls back to 1.
        let p2 = s.dir().join(ArtifactStore::<MemBackend>::artifact_name("ckpt", 2));
        let mut bytes = s.backend().raw(&p2).unwrap();
        bytes[20] ^= 0x01;
        s.backend().plant(&p2, &bytes);
        let (latest, skipped) = s.latest_valid("ckpt").unwrap();
        assert_eq!(latest.unwrap().payload, b"one");
        assert_eq!(skipped.len(), 2);
    }

    #[test]
    fn empty_or_missing_store_is_a_clean_none() {
        let s = store();
        let (latest, skipped) = s.latest_valid("ckpt").unwrap();
        assert!(latest.is_none() && skipped.is_empty());
        // Directory never created at all.
        let s2 = ArtifactStore { backend: MemBackend::new(), dir: PathBuf::from("nowhere"), retain: 3 };
        let (latest, skipped) = s2.latest_valid("ckpt").unwrap();
        assert!(latest.is_none() && skipped.is_empty());
    }

    #[test]
    fn stale_latest_pointer_does_not_mislead_recovery() {
        let s = store();
        s.put_numbered("ckpt", 1, b"one").unwrap();
        // Plant a pointer at a seq that does not exist.
        s.put("ckpt.latest", ArtifactStore::<MemBackend>::artifact_name("ckpt", 9).as_bytes()).unwrap();
        assert_eq!(s.latest_hint("ckpt"), Some(9));
        let (latest, _) = s.latest_valid("ckpt").unwrap();
        assert_eq!(latest.unwrap().seq, 1);
    }

    #[test]
    fn resolve_latest_follows_a_healthy_pointer_without_scanning() {
        let s = store();
        s.put_numbered("ckpt", 1, b"one").unwrap();
        s.put_numbered("ckpt", 2, b"two").unwrap();
        let (valid, skipped) = s.resolve_latest("ckpt").unwrap();
        let valid = valid.unwrap();
        assert_eq!((valid.seq, valid.payload.as_slice()), (2, b"two".as_slice()));
        assert!(skipped.is_empty());
        // A stale-but-followable pointer is trusted: the pointer *is* the
        // publisher's switch signal.
        s.put("ckpt.latest", ArtifactStore::<MemBackend>::artifact_name("ckpt", 1).as_bytes()).unwrap();
        let (valid, skipped) = s.resolve_latest("ckpt").unwrap();
        assert_eq!(valid.unwrap().seq, 1);
        assert!(skipped.is_empty());
    }

    #[test]
    fn resolve_latest_missing_pointer_scans_silently() {
        let s = store();
        s.put_numbered("ckpt", 3, b"three").unwrap();
        s.backend().remove(&s.dir().join("ckpt.latest")).unwrap();
        let (valid, skipped) = s.resolve_latest("ckpt").unwrap();
        assert_eq!(valid.unwrap().seq, 3);
        assert!(skipped.is_empty(), "missing pointer is normal, not reportable: {skipped:?}");
    }

    #[test]
    fn resolve_latest_corrupt_pointer_falls_back_with_reason() {
        let s = store();
        s.put_numbered("ckpt", 1, b"one").unwrap();
        s.put_numbered("ckpt", 2, b"two").unwrap();
        let ptr = s.dir().join("ckpt.latest");
        let mut bytes = s.backend().raw(&ptr).unwrap();
        let mid = bytes.len() / 2;
        bytes[mid] ^= 0x20;
        s.backend().plant(&ptr, &bytes);
        let (valid, skipped) = s.resolve_latest("ckpt").unwrap();
        assert_eq!(valid.unwrap().seq, 2, "scan fallback must still find the newest artifact");
        assert_eq!(skipped.len(), 1);
        assert_eq!(skipped[0].path, ptr);
        assert!(skipped[0].reason.contains("latest pointer corrupt"), "{:?}", skipped[0]);
    }

    #[test]
    fn resolve_latest_dangling_pointer_falls_back_with_reason() {
        let s = store();
        s.put_numbered("ckpt", 1, b"one").unwrap();
        s.put("ckpt.latest", ArtifactStore::<MemBackend>::artifact_name("ckpt", 9).as_bytes()).unwrap();
        let (valid, skipped) = s.resolve_latest("ckpt").unwrap();
        assert_eq!(valid.unwrap().seq, 1);
        assert_eq!(skipped.len(), 1);
        assert!(skipped[0].reason.contains("unusable"), "{:?}", skipped[0]);

        // Pointer payload that is not an artifact name at all.
        s.put("ckpt.latest", b"..\\..\\evil").unwrap();
        let (valid, skipped) = s.resolve_latest("ckpt").unwrap();
        assert_eq!(valid.unwrap().seq, 1);
        assert!(skipped[0].reason.contains("not a valid artifact name"), "{:?}", skipped[0]);
    }

    #[test]
    fn temp_debris_is_invisible_to_recovery() {
        let s = store();
        s.put_numbered("ckpt", 1, b"one").unwrap();
        s.backend().plant(&s.dir().join(".ckpt-00000002.dgart.tmp"), b"half-written junk");
        let (latest, skipped) = s.latest_valid("ckpt").unwrap();
        assert_eq!(latest.unwrap().seq, 1);
        assert!(skipped.is_empty());
    }

    #[test]
    fn atomic_write_std_roundtrip_and_no_temp_left() {
        let dir = std::env::temp_dir().join(format!("dg_io_store_{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("report.json");
        atomic_write(&path, b"{\"ok\":true}").unwrap();
        assert_eq!(std::fs::read(&path).unwrap(), b"{\"ok\":true}");
        let names: Vec<_> = std::fs::read_dir(&dir).unwrap().map(|e| e.unwrap().file_name()).collect();
        assert_eq!(names.len(), 1, "temp sibling must be gone: {names:?}");
        let _ = std::fs::remove_dir_all(&dir);
    }
}
