//! Deterministic fault injection: an in-memory filesystem with power-loss
//! semantics ([`MemBackend`]) and a wrapper that fails or kills the
//! process at the k-th backend operation ([`FaultBackend`]).
//!
//! The model follows what POSIX actually guarantees, not what filesystems
//! usually do:
//!
//! * Written bytes are volatile until `sync_file`; a crash may drop them,
//!   keep them, or keep a torn prefix ([`DataLossPolicy`]).
//! * Directory entries (created / renamed / removed names) are volatile
//!   until `sync_dir`; a crash may revert them ([`DirLossPolicy`]).
//!
//! A test drives the store against a [`FaultBackend`], then calls
//! [`MemBackend::materialize_crash`] to obtain the filesystem a rebooted
//! process would observe, under every combination of loss policies, and
//! asserts recovery succeeds on all of them.

use std::collections::HashMap;
use std::path::{Path, PathBuf};
use std::sync::{Arc, Mutex};

use crate::backend::{Backend, FileId};
use crate::error::{ErrorKind, StoreError};

/// What happens to bytes written but not yet `sync_file`d when the
/// process dies.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DataLossPolicy {
    /// Unsynced bytes vanish: the file rolls back to its synced length.
    DropUnsynced,
    /// Unsynced bytes survive (the kernel happened to flush them).
    KeepUnsynced,
    /// A torn write: the synced prefix plus half of the unsynced tail
    /// survive.
    TornTail,
}

impl DataLossPolicy {
    /// All policies, for exhaustive enumeration in tests.
    pub const ALL: [DataLossPolicy; 3] =
        [DataLossPolicy::DropUnsynced, DataLossPolicy::KeepUnsynced, DataLossPolicy::TornTail];
}

/// What happens to directory entries changed but not yet `sync_dir`d when
/// the process dies.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DirLossPolicy {
    /// Unsynced creates/renames/removes are rolled back.
    RevertUnsynced,
    /// Unsynced directory operations survive.
    KeepUnsynced,
}

impl DirLossPolicy {
    /// All policies, for exhaustive enumeration in tests.
    pub const ALL: [DirLossPolicy; 2] = [DirLossPolicy::RevertUnsynced, DirLossPolicy::KeepUnsynced];
}

#[derive(Debug, Clone)]
struct FileData {
    data: Vec<u8>,
    synced_len: usize,
}

/// A directory operation not yet committed by `sync_dir`, with enough
/// state to revert it.
#[derive(Debug, Clone)]
enum DirOp {
    Create { path: PathBuf, overwritten: Option<FileData> },
    Rename { from: PathBuf, to: PathBuf, overwritten: Option<FileData> },
    Remove { path: PathBuf, old: FileData },
}

impl DirOp {
    fn dir(&self) -> &Path {
        let p = match self {
            DirOp::Create { path, .. } | DirOp::Remove { path, .. } => path,
            DirOp::Rename { from, .. } => from,
        };
        p.parent().unwrap_or_else(|| Path::new(""))
    }
}

#[derive(Debug, Default)]
struct MemInner {
    files: HashMap<PathBuf, FileData>,
    dirs: Vec<PathBuf>,
    open: HashMap<u64, PathBuf>,
    next_id: u64,
    journal: Vec<DirOp>,
}

impl MemInner {
    fn dir_exists(&self, dir: &Path) -> bool {
        dir.as_os_str().is_empty() || self.dirs.iter().any(|d| d == dir)
    }
}

/// In-memory filesystem with explicit durability tracking.
///
/// The handle is cheap to clone; clones share state, so a test can keep
/// one while the store under test consumes another.
#[derive(Debug, Clone, Default)]
pub struct MemBackend(Arc<Mutex<MemInner>>);

impl MemBackend {
    /// Creates an empty in-memory filesystem.
    pub fn new() -> Self {
        Self::default()
    }

    /// Returns the filesystem a rebooted process would observe after a
    /// crash right now, under the given loss policies: a fresh backend
    /// with no open files, every surviving byte durable.
    pub fn materialize_crash(&self, data: DataLossPolicy, dir: DirLossPolicy) -> MemBackend {
        let inner = self.0.lock().unwrap();
        let mut files = inner.files.clone();
        if dir == DirLossPolicy::RevertUnsynced {
            for op in inner.journal.iter().rev() {
                match op {
                    DirOp::Create { path, overwritten } => match overwritten {
                        Some(old) => {
                            files.insert(path.clone(), old.clone());
                        }
                        None => {
                            files.remove(path);
                        }
                    },
                    DirOp::Rename { from, to, overwritten } => {
                        if let Some(moved) = files.remove(to) {
                            files.insert(from.clone(), moved);
                        }
                        if let Some(old) = overwritten {
                            files.insert(to.clone(), old.clone());
                        }
                    }
                    DirOp::Remove { path, old } => {
                        files.insert(path.clone(), old.clone());
                    }
                }
            }
        }
        for f in files.values_mut() {
            let keep = match data {
                DataLossPolicy::DropUnsynced => f.synced_len,
                DataLossPolicy::KeepUnsynced => f.data.len(),
                DataLossPolicy::TornTail => f.synced_len + (f.data.len() - f.synced_len) / 2,
            };
            f.data.truncate(keep);
            f.synced_len = f.data.len();
        }
        MemBackend(Arc::new(Mutex::new(MemInner {
            files,
            dirs: inner.dirs.clone(),
            open: HashMap::new(),
            next_id: 0,
            journal: Vec::new(),
        })))
    }

    /// Raw bytes of `path` in the live (pre-crash) view, if present.
    pub fn raw(&self, path: &Path) -> Option<Vec<u8>> {
        self.0.lock().unwrap().files.get(path).map(|f| f.data.clone())
    }

    /// Overwrites `path` with `bytes`, fully durable — for tests that
    /// plant corrupt artifacts directly.
    pub fn plant(&self, path: &Path, bytes: &[u8]) {
        let mut inner = self.0.lock().unwrap();
        inner.files.insert(path.to_path_buf(), FileData { data: bytes.to_vec(), synced_len: bytes.len() });
    }
}

impl Backend for MemBackend {
    fn create(&self, path: &Path) -> Result<FileId, StoreError> {
        let mut inner = self.0.lock().unwrap();
        let parent = path.parent().unwrap_or_else(|| Path::new("")).to_path_buf();
        if !inner.dir_exists(&parent) {
            return Err(StoreError::new("create", path, ErrorKind::NotFound, "parent directory missing"));
        }
        let overwritten =
            inner.files.insert(path.to_path_buf(), FileData { data: Vec::new(), synced_len: 0 });
        inner.journal.push(DirOp::Create { path: path.to_path_buf(), overwritten });
        let id = inner.next_id;
        inner.next_id += 1;
        inner.open.insert(id, path.to_path_buf());
        Ok(FileId(id))
    }

    fn append(&self, id: FileId, data: &[u8]) -> Result<(), StoreError> {
        let mut inner = self.0.lock().unwrap();
        let path = inner.open.get(&id.0).cloned().ok_or_else(|| {
            StoreError::new("append", Path::new("<closed>"), ErrorKind::Io, "stale file handle")
        })?;
        match inner.files.get_mut(&path) {
            Some(f) => {
                f.data.extend_from_slice(data);
                Ok(())
            }
            None => Err(StoreError::new("append", &path, ErrorKind::NotFound, "file vanished")),
        }
    }

    fn sync_file(&self, id: FileId) -> Result<(), StoreError> {
        let mut inner = self.0.lock().unwrap();
        let path = inner.open.get(&id.0).cloned().ok_or_else(|| {
            StoreError::new("sync_file", Path::new("<closed>"), ErrorKind::Io, "stale file handle")
        })?;
        match inner.files.get_mut(&path) {
            Some(f) => {
                f.synced_len = f.data.len();
                Ok(())
            }
            None => Err(StoreError::new("sync_file", &path, ErrorKind::NotFound, "file vanished")),
        }
    }

    fn close(&self, id: FileId) -> Result<(), StoreError> {
        let mut inner = self.0.lock().unwrap();
        inner.open.remove(&id.0).map(|_| ()).ok_or_else(|| {
            StoreError::new("close", Path::new("<closed>"), ErrorKind::Io, "stale file handle")
        })
    }

    fn rename(&self, from: &Path, to: &Path) -> Result<(), StoreError> {
        let mut inner = self.0.lock().unwrap();
        let moved = inner
            .files
            .remove(from)
            .ok_or_else(|| StoreError::new("rename", from, ErrorKind::NotFound, "source missing"))?;
        let overwritten = inner.files.insert(to.to_path_buf(), moved);
        inner.journal.push(DirOp::Rename { from: from.to_path_buf(), to: to.to_path_buf(), overwritten });
        Ok(())
    }

    fn sync_dir(&self, dir: &Path) -> Result<(), StoreError> {
        let mut inner = self.0.lock().unwrap();
        if !inner.dir_exists(dir) {
            return Err(StoreError::new("sync_dir", dir, ErrorKind::NotFound, "no such directory"));
        }
        inner.journal.retain(|op| op.dir() != dir);
        Ok(())
    }

    fn read(&self, path: &Path) -> Result<Vec<u8>, StoreError> {
        let inner = self.0.lock().unwrap();
        inner
            .files
            .get(path)
            .map(|f| f.data.clone())
            .ok_or_else(|| StoreError::new("read", path, ErrorKind::NotFound, "no such file"))
    }

    fn list(&self, dir: &Path) -> Result<Vec<PathBuf>, StoreError> {
        let inner = self.0.lock().unwrap();
        if !inner.dir_exists(dir) {
            return Err(StoreError::new("list", dir, ErrorKind::NotFound, "no such directory"));
        }
        let mut out: Vec<PathBuf> = inner
            .files
            .keys()
            .filter(|p| p.parent().unwrap_or_else(|| Path::new("")) == dir)
            .cloned()
            .collect();
        out.sort();
        Ok(out)
    }

    fn remove(&self, path: &Path) -> Result<(), StoreError> {
        let mut inner = self.0.lock().unwrap();
        let old = inner
            .files
            .remove(path)
            .ok_or_else(|| StoreError::new("remove", path, ErrorKind::NotFound, "no such file"))?;
        inner.journal.push(DirOp::Remove { path: path.to_path_buf(), old });
        Ok(())
    }

    fn create_dir_all(&self, dir: &Path) -> Result<(), StoreError> {
        let mut inner = self.0.lock().unwrap();
        // Directory creation is modelled as immediately durable: stores
        // create their directory once at open, long before any crash
        // point worth exercising.
        let mut cur = dir.to_path_buf();
        loop {
            if !cur.as_os_str().is_empty() && !inner.dirs.contains(&cur) {
                inner.dirs.push(cur.clone());
            }
            match cur.parent() {
                Some(p) if !p.as_os_str().is_empty() => cur = p.to_path_buf(),
                _ => break,
            }
        }
        Ok(())
    }
}

/// The injected behaviour at one operation index.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FaultOutcome {
    /// The operation fails with the given kind; the process lives on.
    Error(ErrorKind),
    /// The process dies at this operation; it has no effect, and every
    /// later operation returns [`ErrorKind::Crashed`].
    Crash,
    /// The process dies mid-`append`: the first `keep` bytes land, the
    /// rest do not. On any other operation this behaves like `Crash`.
    TornAppend {
        /// Bytes of the append that reach the file before death.
        keep: usize,
    },
}

/// A deterministic schedule mapping operation indices to faults.
#[derive(Debug, Clone, Default)]
pub struct FaultPlan {
    faults: HashMap<u64, FaultOutcome>,
}

impl FaultPlan {
    /// An empty plan (no faults).
    pub fn new() -> Self {
        Self::default()
    }

    /// Fails operation `idx` with `kind`.
    pub fn fail_at(mut self, idx: u64, kind: ErrorKind) -> Self {
        self.faults.insert(idx, FaultOutcome::Error(kind));
        self
    }

    /// Kills the process at operation `idx`.
    pub fn crash_at(mut self, idx: u64) -> Self {
        self.faults.insert(idx, FaultOutcome::Crash);
        self
    }

    /// Kills the process mid-append at operation `idx`, landing `keep`
    /// bytes first.
    pub fn torn_at(mut self, idx: u64, keep: usize) -> Self {
        self.faults.insert(idx, FaultOutcome::TornAppend { keep });
        self
    }

    /// A pseudo-random schedule over the first `horizon` operations,
    /// fully determined by `seed`: roughly one in eight operations fails
    /// transiently (`Io` or `NoSpace`), and one operation crashes.
    pub fn seeded(seed: u64, horizon: u64) -> Self {
        let mut state = seed.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut next = move || {
            state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        };
        let mut plan = FaultPlan::new();
        if horizon == 0 {
            return plan;
        }
        for idx in 0..horizon {
            if next() % 8 == 0 {
                let kind = if next() % 2 == 0 { ErrorKind::Io } else { ErrorKind::NoSpace };
                plan.faults.insert(idx, FaultOutcome::Error(kind));
            }
        }
        let crash_idx = next() % horizon;
        plan.faults.insert(crash_idx, FaultOutcome::Crash);
        plan
    }

    fn get(&self, idx: u64) -> Option<FaultOutcome> {
        self.faults.get(&idx).copied()
    }
}

#[derive(Debug)]
struct FaultInner {
    plan: FaultPlan,
    op: u64,
    crashed: bool,
}

/// A [`Backend`] that delegates to a [`MemBackend`] while counting
/// operations and applying a [`FaultPlan`].
///
/// The handle is cheap to clone; clones share the operation counter and
/// crash flag, so a test can hand one clone to the store under test and
/// keep another for inspection.
#[derive(Debug, Clone)]
pub struct FaultBackend {
    mem: MemBackend,
    inner: Arc<Mutex<FaultInner>>,
}

impl FaultBackend {
    /// Wraps `mem`, applying `plan`.
    pub fn new(mem: MemBackend, plan: FaultPlan) -> Self {
        FaultBackend { mem, inner: Arc::new(Mutex::new(FaultInner { plan, op: 0, crashed: false })) }
    }

    /// Total operations attempted so far (including faulted ones). Run a
    /// fault-free pass first to learn how many crash points a scenario
    /// has.
    pub fn ops_seen(&self) -> u64 {
        self.inner.lock().unwrap().op
    }

    /// Whether an injected crash has fired.
    pub fn crashed(&self) -> bool {
        self.inner.lock().unwrap().crashed
    }

    /// The underlying in-memory filesystem, for crash materialization.
    pub fn mem(&self) -> MemBackend {
        self.mem.clone()
    }

    /// Checks the plan for the next operation. `Ok(())` means proceed.
    fn gate(&self, op: &'static str, path: &Path) -> Result<Option<FaultOutcome>, StoreError> {
        let mut inner = self.inner.lock().unwrap();
        if inner.crashed {
            return Err(StoreError::new(op, path, ErrorKind::Crashed, "process already crashed"));
        }
        let idx = inner.op;
        inner.op += 1;
        match inner.plan.get(idx) {
            None => Ok(None),
            Some(FaultOutcome::Error(kind)) => {
                Err(StoreError::new(op, path, kind, format!("injected fault at op {idx}")))
            }
            Some(FaultOutcome::Crash) => {
                inner.crashed = true;
                Err(StoreError::new(op, path, ErrorKind::Crashed, format!("injected crash at op {idx}")))
            }
            Some(outcome @ FaultOutcome::TornAppend { .. }) => {
                inner.crashed = true;
                Ok(Some(outcome))
            }
        }
    }
}

impl Backend for FaultBackend {
    fn create(&self, path: &Path) -> Result<FileId, StoreError> {
        self.gate("create", path)?;
        self.mem.create(path)
    }

    fn append(&self, id: FileId, data: &[u8]) -> Result<(), StoreError> {
        match self.gate("append", Path::new("<open file>"))? {
            Some(FaultOutcome::TornAppend { keep }) => {
                let keep = keep.min(data.len());
                let _ = self.mem.append(id, &data[..keep]);
                Err(StoreError::new(
                    "append",
                    Path::new("<open file>"),
                    ErrorKind::Crashed,
                    format!("injected torn append: {keep} of {} bytes landed", data.len()),
                ))
            }
            _ => self.mem.append(id, data),
        }
    }

    fn sync_file(&self, id: FileId) -> Result<(), StoreError> {
        self.gate("sync_file", Path::new("<open file>"))?;
        self.mem.sync_file(id)
    }

    fn close(&self, id: FileId) -> Result<(), StoreError> {
        self.gate("close", Path::new("<open file>"))?;
        self.mem.close(id)
    }

    fn rename(&self, from: &Path, to: &Path) -> Result<(), StoreError> {
        self.gate("rename", from)?;
        self.mem.rename(from, to)
    }

    fn sync_dir(&self, dir: &Path) -> Result<(), StoreError> {
        self.gate("sync_dir", dir)?;
        self.mem.sync_dir(dir)
    }

    fn read(&self, path: &Path) -> Result<Vec<u8>, StoreError> {
        self.gate("read", path)?;
        self.mem.read(path)
    }

    fn list(&self, dir: &Path) -> Result<Vec<PathBuf>, StoreError> {
        self.gate("list", dir)?;
        self.mem.list(dir)
    }

    fn remove(&self, path: &Path) -> Result<(), StoreError> {
        self.gate("remove", path)?;
        self.mem.remove(path)
    }

    fn create_dir_all(&self, dir: &Path) -> Result<(), StoreError> {
        self.gate("create_dir_all", dir)?;
        self.mem.create_dir_all(dir)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn p(s: &str) -> PathBuf {
        PathBuf::from(s)
    }

    fn write_file(b: &impl Backend, path: &Path, data: &[u8], sync: bool) {
        let id = b.create(path).unwrap();
        b.append(id, data).unwrap();
        if sync {
            b.sync_file(id).unwrap();
        }
        b.close(id).unwrap();
    }

    #[test]
    fn unsynced_data_drops_on_crash() {
        let mem = MemBackend::new();
        mem.create_dir_all(&p("d")).unwrap();
        mem.sync_dir(&p("d")).unwrap();
        let id = mem.create(&p("d/f")).unwrap();
        mem.append(id, b"synced").unwrap();
        mem.sync_file(id).unwrap();
        mem.append(id, b" unsynced").unwrap();
        mem.sync_dir(&p("d")).unwrap();

        let after = mem.materialize_crash(DataLossPolicy::DropUnsynced, DirLossPolicy::KeepUnsynced);
        assert_eq!(after.read(&p("d/f")).unwrap(), b"synced");
        let after = mem.materialize_crash(DataLossPolicy::KeepUnsynced, DirLossPolicy::KeepUnsynced);
        assert_eq!(after.read(&p("d/f")).unwrap(), b"synced unsynced");
        let after = mem.materialize_crash(DataLossPolicy::TornTail, DirLossPolicy::KeepUnsynced);
        let torn = after.read(&p("d/f")).unwrap();
        assert!(torn.starts_with(b"synced") && torn.len() < b"synced unsynced".len());
    }

    #[test]
    fn unsynced_rename_reverts_on_crash() {
        let mem = MemBackend::new();
        mem.create_dir_all(&p("d")).unwrap();
        write_file(&mem, &p("d/tmp"), b"payload", true);
        mem.sync_dir(&p("d")).unwrap();
        mem.rename(&p("d/tmp"), &p("d/final")).unwrap();

        // Without the dir fsync the rename may be lost...
        let after = mem.materialize_crash(DataLossPolicy::DropUnsynced, DirLossPolicy::RevertUnsynced);
        assert!(after.read(&p("d/final")).is_err());
        assert_eq!(after.read(&p("d/tmp")).unwrap(), b"payload");

        // ...and after the dir fsync it is durable.
        mem.sync_dir(&p("d")).unwrap();
        let after = mem.materialize_crash(DataLossPolicy::DropUnsynced, DirLossPolicy::RevertUnsynced);
        assert_eq!(after.read(&p("d/final")).unwrap(), b"payload");
    }

    #[test]
    fn reverted_create_disappears_and_overwrite_restores() {
        let mem = MemBackend::new();
        mem.create_dir_all(&p("d")).unwrap();
        write_file(&mem, &p("d/f"), b"old", true);
        mem.sync_dir(&p("d")).unwrap();
        // Truncating re-create, never dir-synced: reverting restores "old".
        write_file(&mem, &p("d/f"), b"new", true);
        write_file(&mem, &p("d/g"), b"ghost", true);
        let after = mem.materialize_crash(DataLossPolicy::KeepUnsynced, DirLossPolicy::RevertUnsynced);
        assert_eq!(after.read(&p("d/f")).unwrap(), b"old");
        assert!(after.read(&p("d/g")).is_err());
    }

    #[test]
    fn fault_backend_injects_error_then_recovers() {
        let mem = MemBackend::new();
        let plan = FaultPlan::new().fail_at(1, ErrorKind::NoSpace);
        let fb = FaultBackend::new(mem, plan);
        fb.create_dir_all(&p("d")).unwrap(); // op 0
        let err = fb.create(&p("d/f")).unwrap_err(); // op 1: injected
        assert_eq!(err.kind, ErrorKind::NoSpace);
        assert!(!fb.crashed());
        fb.create(&p("d/f")).unwrap(); // op 2: fine again
        assert_eq!(fb.ops_seen(), 3);
    }

    #[test]
    fn fault_backend_crash_is_terminal() {
        let fb = FaultBackend::new(MemBackend::new(), FaultPlan::new().crash_at(1));
        fb.create_dir_all(&p("d")).unwrap();
        assert_eq!(fb.create(&p("d/f")).unwrap_err().kind, ErrorKind::Crashed);
        assert!(fb.crashed());
        assert_eq!(fb.create_dir_all(&p("e")).unwrap_err().kind, ErrorKind::Crashed);
    }

    #[test]
    fn torn_append_lands_prefix_then_crashes() {
        let mem = MemBackend::new();
        let fb = FaultBackend::new(mem.clone(), FaultPlan::new().torn_at(2, 3));
        fb.create_dir_all(&p("d")).unwrap(); // op 0
        let id = fb.create(&p("d/f")).unwrap(); // op 1
        let err = fb.append(id, b"abcdef").unwrap_err(); // op 2: torn
        assert_eq!(err.kind, ErrorKind::Crashed);
        let after = mem.materialize_crash(DataLossPolicy::KeepUnsynced, DirLossPolicy::KeepUnsynced);
        assert_eq!(after.read(&p("d/f")).unwrap(), b"abc");
    }

    #[test]
    fn seeded_plan_is_deterministic_and_contains_a_crash() {
        let a = FaultPlan::seeded(7, 40);
        let b = FaultPlan::seeded(7, 40);
        let crashes = (0..40).filter(|&i| a.get(i) == Some(FaultOutcome::Crash)).count();
        assert!(crashes >= 1);
        for i in 0..40 {
            assert_eq!(a.get(i), b.get(i));
        }
        let c = FaultPlan::seeded(8, 40);
        assert!((0..40).any(|i| a.get(i) != c.get(i)));
    }
}
