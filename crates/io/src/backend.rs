//! The narrow filesystem surface the artifact store drives.
//!
//! [`ArtifactStore`](crate::ArtifactStore) never touches `std::fs`
//! directly; every durable effect goes through a [`Backend`]. That keeps
//! the store's crash-safety logic testable: the same code path runs
//! against the real filesystem ([`StdBackend`]) and against the
//! deterministic fault injector ([`FaultBackend`](crate::FaultBackend)),
//! which can fail or kill the process at any individual operation.

use std::collections::HashMap;
use std::io::Write;
use std::path::{Path, PathBuf};
use std::sync::Mutex;

use crate::error::{ErrorKind, StoreError};

/// Opaque handle to a file opened for writing via [`Backend::create`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct FileId(pub(crate) u64);

/// Filesystem operations the store needs, each of which is an injectable
/// crash point in the fault harness.
///
/// Methods take `&self`: implementations use interior mutability so that
/// handles can be cloned into checkpoint sinks and test observers.
pub trait Backend {
    /// Creates (truncating) `path` for writing and returns a handle.
    fn create(&self, path: &Path) -> Result<FileId, StoreError>;
    /// Appends `data` to the open file `id`.
    fn append(&self, id: FileId, data: &[u8]) -> Result<(), StoreError>;
    /// Flushes the open file `id`'s data and metadata to stable storage.
    fn sync_file(&self, id: FileId) -> Result<(), StoreError>;
    /// Closes the open file `id`.
    fn close(&self, id: FileId) -> Result<(), StoreError>;
    /// Atomically renames `from` to `to` (same directory).
    fn rename(&self, from: &Path, to: &Path) -> Result<(), StoreError>;
    /// Flushes directory entries of `dir` (created/renamed/removed names)
    /// to stable storage.
    fn sync_dir(&self, dir: &Path) -> Result<(), StoreError>;
    /// Reads the full contents of `path`.
    fn read(&self, path: &Path) -> Result<Vec<u8>, StoreError>;
    /// Lists the entries of `dir` (full paths, sorted by name).
    fn list(&self, dir: &Path) -> Result<Vec<PathBuf>, StoreError>;
    /// Removes the file at `path`.
    fn remove(&self, path: &Path) -> Result<(), StoreError>;
    /// Creates `dir` and any missing parents.
    fn create_dir_all(&self, dir: &Path) -> Result<(), StoreError>;
}

/// Real-filesystem backend.
///
/// Directory durability uses the POSIX idiom of opening the directory and
/// `fsync`ing it; on platforms where opening a directory fails (e.g.
/// Windows), `sync_dir` degrades to a no-op, which matches what the
/// standard library's own users can guarantee there.
#[derive(Debug, Default)]
pub struct StdBackend {
    open: Mutex<OpenFiles>,
}

#[derive(Debug, Default)]
struct OpenFiles {
    next: u64,
    files: HashMap<u64, (PathBuf, std::fs::File)>,
}

impl StdBackend {
    /// Creates a backend with no open files.
    pub fn new() -> Self {
        Self::default()
    }

    fn with_file<T>(
        &self,
        id: FileId,
        op: &'static str,
        f: impl FnOnce(&Path, &mut std::fs::File) -> std::io::Result<T>,
    ) -> Result<T, StoreError> {
        let mut open = self.open.lock().unwrap();
        let (path, file) = open
            .files
            .get_mut(&id.0)
            .ok_or_else(|| StoreError::new(op, Path::new("<closed>"), ErrorKind::Io, "stale file handle"))?;
        let path = path.clone();
        f(&path, file).map_err(|e| StoreError::from_io(op, &path, &e))
    }
}

impl Backend for StdBackend {
    fn create(&self, path: &Path) -> Result<FileId, StoreError> {
        let file = std::fs::File::create(path).map_err(|e| StoreError::from_io("create", path, &e))?;
        let mut open = self.open.lock().unwrap();
        let id = open.next;
        open.next += 1;
        open.files.insert(id, (path.to_path_buf(), file));
        Ok(FileId(id))
    }

    fn append(&self, id: FileId, data: &[u8]) -> Result<(), StoreError> {
        self.with_file(id, "append", |_, f| f.write_all(data))
    }

    fn sync_file(&self, id: FileId) -> Result<(), StoreError> {
        self.with_file(id, "sync_file", |_, f| f.sync_all())
    }

    fn close(&self, id: FileId) -> Result<(), StoreError> {
        let mut open = self.open.lock().unwrap();
        open.files.remove(&id.0).map(|_| ()).ok_or_else(|| {
            StoreError::new("close", Path::new("<closed>"), ErrorKind::Io, "stale file handle")
        })
    }

    fn rename(&self, from: &Path, to: &Path) -> Result<(), StoreError> {
        std::fs::rename(from, to).map_err(|e| StoreError::from_io("rename", from, &e))
    }

    fn sync_dir(&self, dir: &Path) -> Result<(), StoreError> {
        match std::fs::File::open(dir) {
            Ok(d) => d.sync_all().map_err(|e| StoreError::from_io("sync_dir", dir, &e)),
            // Directories are not openable on every platform; the rename
            // itself is still atomic, we just lose the entry-durability
            // fsync there.
            Err(_) => Ok(()),
        }
    }

    fn read(&self, path: &Path) -> Result<Vec<u8>, StoreError> {
        std::fs::read(path).map_err(|e| StoreError::from_io("read", path, &e))
    }

    fn list(&self, dir: &Path) -> Result<Vec<PathBuf>, StoreError> {
        let rd = std::fs::read_dir(dir).map_err(|e| StoreError::from_io("list", dir, &e))?;
        let mut out = Vec::new();
        for entry in rd {
            let entry = entry.map_err(|e| StoreError::from_io("list", dir, &e))?;
            out.push(entry.path());
        }
        out.sort();
        Ok(out)
    }

    fn remove(&self, path: &Path) -> Result<(), StoreError> {
        std::fs::remove_file(path).map_err(|e| StoreError::from_io("remove", path, &e))
    }

    fn create_dir_all(&self, dir: &Path) -> Result<(), StoreError> {
        std::fs::create_dir_all(dir).map_err(|e| StoreError::from_io("create_dir_all", dir, &e))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tmp_dir(name: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!("dg_io_backend_{}_{}", name, std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        dir
    }

    #[test]
    fn std_backend_write_read_roundtrip() {
        let dir = tmp_dir("roundtrip");
        let b = StdBackend::new();
        let path = dir.join("a.bin");
        let id = b.create(&path).unwrap();
        b.append(id, b"hello ").unwrap();
        b.append(id, b"world").unwrap();
        b.sync_file(id).unwrap();
        b.close(id).unwrap();
        assert_eq!(b.read(&path).unwrap(), b"hello world");
        let listed = b.list(&dir).unwrap();
        assert_eq!(listed, vec![path.clone()]);
        b.rename(&path, &dir.join("b.bin")).unwrap();
        b.sync_dir(&dir).unwrap();
        assert_eq!(b.read(&dir.join("b.bin")).unwrap(), b"hello world");
        b.remove(&dir.join("b.bin")).unwrap();
        assert_eq!(b.read(&dir.join("b.bin")).unwrap_err().kind, ErrorKind::NotFound);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn stale_handle_is_an_error_not_a_panic() {
        let b = StdBackend::new();
        let err = b.append(FileId(42), b"x").unwrap_err();
        assert_eq!(err.kind, ErrorKind::Io);
        assert!(b.close(FileId(42)).is_err());
    }
}
