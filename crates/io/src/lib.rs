//! # dg-io — crash-safe artifact persistence
//!
//! Long GAN trainings are only as reproducible as their durable artifacts:
//! a kill or a full disk in the middle of a checkpoint write must never
//! leave the run unresumable. This crate provides the storage layer every
//! persistence path in the workspace goes through:
//!
//! * [`ArtifactStore`] — atomic writes (temp sibling + fsync file and
//!   parent directory + rename), every payload wrapped in a versioned
//!   [`envelope`] with a length and CRC32 integrity check, numbered
//!   checkpoint rotation with a retain-N policy and a `latest` pointer,
//!   and newest-first recovery that skips truncated/corrupt/partially
//!   renamed files to land on the newest *valid* snapshot.
//! * [`Backend`] — the small filesystem surface the store drives, with
//!   three implementations: [`StdBackend`] (real filesystem),
//!   [`MemBackend`] (in-memory filesystem with power-loss semantics), and
//!   [`FaultBackend`] (deterministic fault injection: fail or crash at the
//!   k-th operation, ENOSPC, torn writes, reverted renames).
//! * [`atomic_write`] — the same temp + fsync + rename discipline for
//!   plain files (released models, datasets, bench reports) that must stay
//!   byte-readable by external tools (`jq`, notebooks) and therefore skip
//!   the envelope.
//!
//! The crate-level invariant, enforced by the fault-injection suite in
//! `tests/fault_injection.rs`: **no crash point leaves the store
//! unrecoverable** — after a simulated power loss at *any* backend
//! operation, under *any* combination of unsynced-data and directory-entry
//! loss semantics, recovery either returns the newest fully-committed
//! artifact bitwise intact or reports a structured error; it never returns
//! silently corrupted bytes.

#![warn(missing_docs)]

pub mod backend;
pub mod envelope;
pub mod error;
pub mod fault;
pub mod store;

pub use backend::{Backend, FileId, StdBackend};
pub use envelope::{crc32, decode, encode, EnvelopeError};
pub use error::{ErrorKind, StoreError};
pub use fault::{DataLossPolicy, DirLossPolicy, FaultBackend, FaultOutcome, FaultPlan, MemBackend};
pub use store::{
    atomic_write, atomic_write_with, ArtifactStore, RotationOutcome, SkippedArtifact, ValidArtifact,
};
