//! Structured storage errors: every failure names the operation, the path,
//! and a machine-checkable kind, so callers can decide between retry,
//! fallback, and abort without string matching.

use std::path::{Path, PathBuf};

/// Machine-checkable classification of a [`StoreError`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ErrorKind {
    /// Generic I/O failure (permissions, transient errors, ...).
    Io,
    /// The device is out of space (`ENOSPC`).
    NoSpace,
    /// The artifact exists but fails integrity verification (truncated,
    /// bit-flipped, wrong magic/version, length mismatch).
    Corrupt,
    /// The artifact does not exist.
    NotFound,
    /// The simulated process has crashed: the fault backend refuses all
    /// further operations (test harness only; never produced by
    /// [`crate::StdBackend`]).
    Crashed,
    /// The payload could not be (de)serialized.
    Serialization,
}

impl ErrorKind {
    fn as_str(self) -> &'static str {
        match self {
            ErrorKind::Io => "I/O error",
            ErrorKind::NoSpace => "no space left on device",
            ErrorKind::Corrupt => "corrupt artifact",
            ErrorKind::NotFound => "not found",
            ErrorKind::Crashed => "simulated crash",
            ErrorKind::Serialization => "serialization error",
        }
    }
}

/// A failed storage operation: what was attempted, on which path, and why.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct StoreError {
    /// The operation that failed (`"create"`, `"append"`, `"rename"`, ...).
    pub op: &'static str,
    /// The path the operation addressed.
    pub path: PathBuf,
    /// Machine-checkable failure class.
    pub kind: ErrorKind,
    /// Human-readable detail (OS error text, envelope finding, ...).
    pub detail: String,
}

impl StoreError {
    /// Builds an error for `op` on `path`.
    pub fn new(op: &'static str, path: &Path, kind: ErrorKind, detail: impl Into<String>) -> Self {
        StoreError { op, path: path.to_path_buf(), kind, detail: detail.into() }
    }

    /// Wraps a [`std::io::Error`], classifying `ENOSPC` and `NotFound`.
    pub fn from_io(op: &'static str, path: &Path, e: &std::io::Error) -> Self {
        let kind = match e.kind() {
            std::io::ErrorKind::NotFound => ErrorKind::NotFound,
            std::io::ErrorKind::StorageFull => ErrorKind::NoSpace,
            _ => ErrorKind::Io,
        };
        Self::new(op, path, kind, e.to_string())
    }
}

impl std::fmt::Display for StoreError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{} during {} on {}: {}", self.kind.as_str(), self.op, self.path.display(), self.detail)
    }
}

impl std::error::Error for StoreError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_names_op_path_kind_and_detail() {
        let e = StoreError::new("rename", Path::new("/tmp/x"), ErrorKind::NoSpace, "disk full");
        let s = e.to_string();
        assert!(
            s.contains("rename") && s.contains("/tmp/x") && s.contains("no space") && s.contains("disk full"),
            "{s}"
        );
    }

    #[test]
    fn io_error_classification() {
        let e = std::io::Error::new(std::io::ErrorKind::NotFound, "gone");
        assert_eq!(StoreError::from_io("read", Path::new("a"), &e).kind, ErrorKind::NotFound);
        let e = std::io::Error::other("boom");
        assert_eq!(StoreError::from_io("read", Path::new("a"), &e).kind, ErrorKind::Io);
    }
}
