//! Membership-inference attack against released GAN models (§5.3.1,
//! Figs. 12 and 31).
//!
//! Follows the LOGAN white-box attack of Hayes et al.: the released model
//! includes the discriminator, which was trained to score training samples
//! highly; the attacker scores each candidate sample with the discriminator
//! and declares the top-scoring half "members". The paper's metric is the
//! *success rate* — the fraction of correct member/non-member guesses on a
//! balanced candidate set (random guessing = 50%).

use dg_data::Dataset;
use dg_nn::graph::Graph;
use dg_nn::tensor::Tensor;
use doppelganger::DoppelGanger;

/// Scores a dataset's samples with a model's primary discriminator.
pub fn discriminator_scores(model: &DoppelGanger, dataset: &Dataset) -> Vec<f32> {
    let encoded = model.encode(dataset);
    let idx: Vec<usize> = (0..encoded.num_samples()).collect();
    let mut out = Vec::with_capacity(idx.len());
    // Chunked to bound peak memory for long series.
    for chunk in idx.chunks(256) {
        let rows = encoded.full_rows(chunk);
        let mut g = Graph::new();
        let rv = g.constant(rows);
        let s = model.discriminate(&mut g, rv, true);
        out.extend_from_slice(g.value(s).as_slice());
    }
    out
}

/// Runs the threshold attack on balanced score sets: the `|members|`
/// top-scoring candidates are declared members. Returns the success rate in
/// `[0, 1]`.
///
/// # Panics
/// Panics if either side is empty.
pub fn attack_success_rate(member_scores: &[f32], nonmember_scores: &[f32]) -> f64 {
    assert!(!member_scores.is_empty() && !nonmember_scores.is_empty(), "empty score sets");
    let mut all: Vec<(f32, bool)> = member_scores
        .iter()
        .map(|&s| (s, true))
        .chain(nonmember_scores.iter().map(|&s| (s, false)))
        .collect();
    // Sort descending by score; ties broken arbitrarily but deterministically.
    all.sort_by(|a, b| b.0.partial_cmp(&a.0).expect("finite scores"));
    let m = member_scores.len();
    let mut correct = 0usize;
    for (i, &(_, is_member)) in all.iter().enumerate() {
        let predicted_member = i < m;
        if predicted_member == is_member {
            correct += 1;
        }
    }
    correct as f64 / all.len() as f64
}

/// End-to-end attack against a released [`DoppelGanger`] model: scores
/// training members and held-out non-members with the discriminator and
/// reports the success rate.
pub fn membership_attack(model: &DoppelGanger, members: &Dataset, nonmembers: &Dataset) -> f64 {
    let ms = discriminator_scores(model, members);
    let ns = discriminator_scores(model, nonmembers);
    attack_success_rate(&ms, &ns)
}

/// Summary of one membership-inference experiment point (Fig. 12's x/y
/// pair).
#[derive(Debug, Clone, Copy)]
pub struct AttackPoint {
    /// Number of training samples the model was fitted on.
    pub training_samples: usize,
    /// Attack success rate.
    pub success_rate: f64,
}

/// A direct-score helper used for the naive-GAN comparison (any model that
/// exposes raw critic scores on encoded rows).
pub fn attack_success_from_rows(
    score_fn: impl Fn(&Tensor) -> Vec<f32>,
    member_rows: &Tensor,
    nonmember_rows: &Tensor,
) -> f64 {
    let ms = score_fn(member_rows);
    let ns = score_fn(nonmember_rows);
    attack_success_rate(&ms, &ns)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn perfectly_separated_scores_give_full_success() {
        let members = vec![10.0_f32; 20];
        let nons = vec![-10.0_f32; 20];
        assert!((attack_success_rate(&members, &nons) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn identical_scores_give_chance_level() {
        // With all-equal scores the attacker's ordering is arbitrary; a
        // balanced set yields 50%.
        let members: Vec<f32> = (0..50).map(|i| (i % 7) as f32).collect();
        let nons = members.clone();
        let rate = attack_success_rate(&members, &nons);
        assert!((rate - 0.5).abs() < 0.12, "rate {rate}");
    }

    #[test]
    fn inverted_scores_give_zero_success() {
        let members = vec![-5.0_f32; 10];
        let nons = vec![5.0_f32; 10];
        assert!(attack_success_rate(&members, &nons) < 1e-12);
    }

    #[test]
    fn unbalanced_sets_are_handled() {
        let members = vec![1.0_f32; 30];
        let nons = vec![0.0_f32; 10];
        let rate = attack_success_rate(&members, &nons);
        assert!((rate - 1.0).abs() < 1e-12);
    }

    #[test]
    fn end_to_end_attack_runs_on_a_tiny_model() {
        use dg_datasets::sine::{self, SineConfig};
        use doppelganger::prelude::*;
        use rand::rngs::StdRng;
        use rand::SeedableRng;

        let mut rng = StdRng::seed_from_u64(1);
        let cfg = SineConfig { num_objects: 24, length: 12, periods: vec![4, 8], noise_sigma: 0.05 };
        let data = sine::generate(&cfg, &mut rng);
        let (train, held) = data.split(0.5, &mut rng);
        let mut dg = DgConfig::quick().with_recommended_s(12);
        dg.attr_hidden = 12;
        dg.lstm_hidden = 12;
        dg.head_hidden = 12;
        dg.disc_hidden = 16;
        dg.disc_depth = 2;
        dg.batch_size = 8;
        let model = DoppelGanger::new(&train, dg, &mut rng);
        let enc = model.encode(&train);
        let mut tr = Trainer::new(model);
        tr.fit(&enc, 10, &mut rng, |_| {});
        let model = tr.into_model();
        let rate = membership_attack(&model, &train, &held);
        assert!((0.0..=1.0).contains(&rate));
    }
}
