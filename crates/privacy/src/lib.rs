//! # dg-privacy — privacy machinery for the §5.3 experiments
//!
//! * [`accountant`] — a Rényi-DP accountant for the subsampled Gaussian
//!   mechanism: converts DP-SGD parameters `(q, σ, T)` to `(ε, δ)` and
//!   inverts a target ε back to a noise multiplier (the role TF-Privacy
//!   played in the paper);
//! * [`membership`] — the LOGAN-style membership-inference attack used to
//!   produce Figs. 12 and 31 (discriminator-score thresholding on a balanced
//!   member/non-member candidate set).
//!
//! The DP-SGD training mechanics (per-sample clipping + noise) live in the
//! `doppelganger` trainer; this crate provides the analysis around them.

#![warn(missing_docs)]

pub mod accountant;
pub mod membership;

pub use accountant::{compute_epsilon, noise_for_epsilon, rdp_step, DpSgdSchedule};
pub use membership::{attack_success_rate, discriminator_scores, membership_attack, AttackPoint};
