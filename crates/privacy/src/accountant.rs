//! Rényi-DP accountant for the subsampled Gaussian mechanism.
//!
//! Converts DP-SGD parameters `(q, σ, T)` into an `(ε, δ)` differential
//! privacy guarantee — the role TensorFlow Privacy played in the paper's
//! §5.3.1 experiments. Implements the integer-order RDP bound of Mironov et
//! al. ("Rényi Differential Privacy of the Sampled Gaussian Mechanism"),
//! composed over `T` steps and converted to `(ε, δ)` via the standard
//! RDP-to-DP lemma.

/// RDP orders evaluated by the accountant.
const ORDERS: [u32; 21] = [2, 3, 4, 5, 6, 7, 8, 9, 10, 12, 14, 16, 20, 24, 28, 32, 40, 48, 56, 64, 128];

/// Parameters of a DP-SGD run.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct DpSgdSchedule {
    /// Sampling rate `q = batch / dataset size`.
    pub sampling_rate: f64,
    /// Noise multiplier `σ`.
    pub noise_multiplier: f64,
    /// Number of noisy gradient steps `T`.
    pub steps: usize,
}

impl DpSgdSchedule {
    /// Builds a schedule from dataset/batch sizes.
    pub fn new(dataset_size: usize, batch_size: usize, steps: usize, noise_multiplier: f64) -> Self {
        assert!(dataset_size > 0 && batch_size > 0, "sizes must be positive");
        DpSgdSchedule {
            sampling_rate: (batch_size as f64 / dataset_size as f64).min(1.0),
            noise_multiplier,
            steps,
        }
    }

    /// The `(ε)` guarantee at a given `δ`.
    pub fn epsilon(&self, delta: f64) -> f64 {
        compute_epsilon(self.sampling_rate, self.noise_multiplier, self.steps, delta)
    }
}

/// RDP of one subsampled-Gaussian step at integer order `alpha`:
/// `(1/(α-1)) · ln Σ_k C(α,k) (1-q)^(α-k) q^k exp(k(k-1)/(2σ²))`.
pub fn rdp_step(q: f64, sigma: f64, alpha: u32) -> f64 {
    assert!(alpha >= 2, "RDP orders start at 2");
    assert!(sigma > 0.0, "sigma must be positive");
    assert!((0.0..=1.0).contains(&q), "q must be a probability");
    if q == 0.0 {
        return 0.0;
    }
    if q == 1.0 {
        // Plain Gaussian mechanism: RDP(α) = α / (2σ²).
        return alpha as f64 / (2.0 * sigma * sigma);
    }
    // log-sum-exp over the binomial expansion.
    let a = alpha as i64;
    let mut log_terms = Vec::with_capacity(alpha as usize + 1);
    for k in 0..=a {
        let lt = ln_choose(a, k)
            + (a - k) as f64 * (1.0 - q).ln()
            + k as f64 * q.ln()
            + (k * (k - 1)) as f64 / (2.0 * sigma * sigma);
        log_terms.push(lt);
    }
    let mx = log_terms.iter().copied().fold(f64::NEG_INFINITY, f64::max);
    let sum: f64 = log_terms.iter().map(|&lt| (lt - mx).exp()).sum();
    (mx + sum.ln()) / (alpha as f64 - 1.0)
}

/// Composes `steps` subsampled-Gaussian releases and converts to `(ε, δ)`:
/// `ε = min_α [ T·RDP(α) + ln(1/δ)/(α-1) ]`.
pub fn compute_epsilon(q: f64, sigma: f64, steps: usize, delta: f64) -> f64 {
    assert!(delta > 0.0 && delta < 1.0, "delta must be in (0, 1)");
    let mut best = f64::INFINITY;
    for &alpha in &ORDERS {
        let rdp = steps as f64 * rdp_step(q, sigma, alpha);
        let eps = rdp + (1.0 / delta).ln() / (alpha as f64 - 1.0);
        best = best.min(eps);
    }
    best
}

/// Inverts [`compute_epsilon`]: the noise multiplier needed to achieve a
/// target `ε` at `δ` (bisection; returns `None` when even enormous noise
/// cannot reach the target).
pub fn noise_for_epsilon(q: f64, steps: usize, delta: f64, target_eps: f64) -> Option<f64> {
    let mut lo = 0.05_f64;
    let mut hi = 1000.0_f64;
    if compute_epsilon(q, hi, steps, delta) > target_eps {
        return None;
    }
    if compute_epsilon(q, lo, steps, delta) <= target_eps {
        return Some(lo);
    }
    for _ in 0..80 {
        let mid = (lo + hi) / 2.0;
        if compute_epsilon(q, mid, steps, delta) > target_eps {
            lo = mid;
        } else {
            hi = mid;
        }
    }
    Some(hi)
}

fn ln_choose(n: i64, k: i64) -> f64 {
    ln_factorial(n) - ln_factorial(k) - ln_factorial(n - k)
}

fn ln_factorial(n: i64) -> f64 {
    (2..=n).map(|i| (i as f64).ln()).sum()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn no_sampling_means_no_privacy_loss() {
        assert_eq!(rdp_step(0.0, 1.0, 8), 0.0);
    }

    #[test]
    fn full_batch_matches_gaussian_mechanism() {
        let r = rdp_step(1.0, 2.0, 4);
        assert!((r - 4.0 / 8.0).abs() < 1e-12);
    }

    #[test]
    fn epsilon_decreases_with_more_noise() {
        let e1 = compute_epsilon(0.01, 0.8, 1000, 1e-5);
        let e2 = compute_epsilon(0.01, 1.5, 1000, 1e-5);
        let e3 = compute_epsilon(0.01, 4.0, 1000, 1e-5);
        assert!(e1 > e2 && e2 > e3, "{e1} > {e2} > {e3} expected");
    }

    #[test]
    fn epsilon_increases_with_steps_and_sampling() {
        let base = compute_epsilon(0.01, 1.1, 1000, 1e-5);
        assert!(compute_epsilon(0.01, 1.1, 10_000, 1e-5) > base);
        assert!(compute_epsilon(0.05, 1.1, 1000, 1e-5) > base);
    }

    #[test]
    fn matches_tf_privacy_tutorial_anchor() {
        // Well-known checkpoint: MNIST-sized run (N = 60000, batch 256,
        // sigma = 1.1, 60 epochs, delta = 1e-5) yields epsilon ~= 3.0 under
        // the integer-order RDP accountant.
        let q = 256.0 / 60_000.0;
        let steps = 60 * (60_000 / 256);
        let eps = compute_epsilon(q, 1.1, steps, 1e-5);
        assert!((2.3..3.8).contains(&eps), "expected ~3.0, got {eps}");
    }

    #[test]
    fn schedule_api_consistency() {
        let s = DpSgdSchedule::new(10_000, 100, 2000, 1.1);
        assert!((s.sampling_rate - 0.01).abs() < 1e-12);
        let e = s.epsilon(1e-5);
        assert!((compute_epsilon(0.01, 1.1, 2000, 1e-5) - e).abs() < 1e-12);
    }

    #[test]
    fn noise_inversion_roundtrips() {
        let q = 0.02;
        let steps = 5000;
        let delta = 1e-5;
        for target in [0.55, 1.18, 4.77] {
            let sigma = noise_for_epsilon(q, steps, delta, target).expect("achievable");
            let achieved = compute_epsilon(q, sigma, steps, delta);
            assert!(achieved <= target * 1.01, "target {target}, achieved {achieved}");
            // And not absurdly conservative.
            let looser = compute_epsilon(q, sigma * 0.9, steps, delta);
            assert!(looser > target * 0.95, "sigma should be near-tight for {target}");
        }
    }
}
