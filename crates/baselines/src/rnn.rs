//! RNN (teacher forcing) baseline (§5.0.1).
//!
//! An LSTM trained by teacher forcing: at each step the *true* previous
//! record (plus the attributes, the paper's "advanced version") is fed in
//! and the next record is predicted. At generation time the model's own
//! predictions are fed back. The first record is drawn from a fitted
//! Gaussian; variable lengths use the generation-flag technique.

use crate::common::{EmpiricalAttributes, FirstRecordGaussian, GenerativeModel};
use dg_data::{decode_length, BatchIter, Dataset, Encoder, EncoderConfig, Range, TimeSeriesObject};
use dg_nn::graph::{Graph, PlanExecutor, Var};
use dg_nn::layers::{Activation, LstmCell, Mlp};
use dg_nn::optim::Adam;
use dg_nn::parallel::num_threads;
use dg_nn::params::ParamStore;
use dg_nn::tensor::Tensor;
use dg_nn::workspace::Workspace;
use doppelganger::layout::OutputLayout;
use doppelganger::telemetry::{DivergencePolicy, RunHeader, RunOutcome, TrainError, TrainMonitor};
use doppelganger::trainer::StepMetrics;
use rand::Rng;
use std::time::Instant;

/// RNN hyper-parameters.
#[derive(Debug, Clone)]
pub struct RnnConfig {
    /// LSTM hidden width (paper: 100).
    pub hidden: usize,
    /// Training minibatch steps.
    pub train_steps: usize,
    /// Minibatch size (paper: 100).
    pub batch: usize,
    /// Adam learning rate (paper: 0.001).
    pub lr: f32,
}

impl Default for RnnConfig {
    fn default() -> Self {
        RnnConfig { hidden: 48, train_steps: 300, batch: 32, lr: 1e-3 }
    }
}

impl RnnConfig {
    /// The paper's Appendix-B configuration (100-unit LSTM).
    pub fn paper() -> Self {
        RnnConfig { hidden: 100, train_steps: 2000, batch: 100, lr: 1e-3 }
    }
}

/// A fitted teacher-forced RNN model.
#[derive(Debug, Clone)]
pub struct RnnModel {
    encoder: Encoder,
    attrs: EmpiricalAttributes,
    first: FirstRecordGaussian,
    lstm: LstmCell,
    head: Mlp,
    store: ParamStore,
    layout: OutputLayout,
}

impl RnnModel {
    /// Fits the RNN on a dataset.
    pub fn fit<R: Rng + ?Sized>(dataset: &Dataset, config: RnnConfig, rng: &mut R) -> Self {
        Self::fit_monitored(dataset, config, rng, &mut TrainMonitor::disabled())
            .expect("a disabled monitor has no watchdog, so fitting cannot fail")
    }

    /// [`RnnModel::fit`] with run-log and watchdog support.
    ///
    /// Teacher forcing has a single MSE objective, so iteration events carry
    /// it as `g_loss` and log `d_loss`/`gp`/`wasserstein` as `null`. The
    /// baseline has no checkpoint format, so
    /// [`DivergencePolicy::RollbackToCheckpoint`] degrades to an abort.
    pub fn fit_monitored<R: Rng + ?Sized>(
        dataset: &Dataset,
        config: RnnConfig,
        rng: &mut R,
        monitor: &mut TrainMonitor,
    ) -> Result<Self, TrainError> {
        let enc_cfg = EncoderConfig { auto_normalize: false, range: Range::ZeroOne };
        let encoder = Encoder::fit(dataset, enc_cfg);
        let encoded = encoder.encode(dataset);
        let sw = encoder.step_width();
        let aw = encoder.attr_width();
        let t_max = encoder.max_len();
        let layout = OutputLayout::step(&encoder.schema, enc_cfg.range);

        let mut firsts: Vec<f32> = Vec::new();
        for (i, &len) in encoded.lengths.iter().enumerate() {
            if len > 0 {
                firsts.extend_from_slice(&encoded.features.row_slice(i)[0..sw]);
            }
        }
        let first = FirstRecordGaussian::fit(&Tensor::from_vec(firsts.len() / sw, sw, firsts));

        let mut store = ParamStore::new();
        let lstm = LstmCell::new(&mut store, "rnn", aw + sw, config.hidden, rng);
        let head = Mlp::new(
            &mut store,
            "rnn_head",
            config.hidden,
            config.hidden,
            1,
            sw,
            Activation::LeakyRelu(0.2),
            Activation::Linear,
            rng,
        );
        let mut opt = Adam::with_betas(config.lr, 0.9, 0.999);
        let mut batches = BatchIter::new(encoded.num_samples(), config.batch);
        let iterations = config.train_steps;
        let started = Instant::now();
        monitor.emit_header(|label, seed| RunHeader {
            label,
            seed,
            iterations,
            num_samples: encoded.num_samples(),
            batch_size: batches.batch_size(),
            d_steps_per_g: 0,
            threads: num_threads(),
            dp: false,
        });
        // Consecutive minibatch graphs recycle each other's buffers.
        let mut ws = Workspace::new();

        for it in 0..iterations {
            let step_started = Instant::now();
            let idx = batches.next_batch(rng).to_vec();
            let b = idx.len();
            let (attrs_b, _, feats_b) = encoded.gather(&idx);
            let lens: Vec<usize> = idx.iter().map(|&i| encoded.lengths[i]).collect();
            let longest = lens.iter().copied().max().unwrap_or(1).max(2);

            let mut g = Graph::with_workspace(std::mem::take(&mut ws));
            let av = g.constant(attrs_b);
            let mut state = lstm.zero_state(&mut g, b);
            let mut total_loss = None;
            let mut total_count = 0.0_f32;
            for t in 1..longest {
                // Teacher-forced input: the true previous step.
                let prev = g.constant(feats_b.slice_cols((t - 1) * sw, t * sw));
                let inp = g.concat_cols(&[av, prev]);
                state = lstm.step(&mut g, &store, inp, state);
                let raw = head.forward(&mut g, &store, state.h);
                let pred = layout.apply(&mut g, raw);
                let target = g.constant(feats_b.slice_cols(t * sw, (t + 1) * sw));
                let d = g.sub(pred, target);
                let sq = g.square(d);
                // Mask out samples whose series ended before t.
                let mask: Vec<f32> = lens.iter().map(|&l| if t < l { 1.0 } else { 0.0 }).collect();
                total_count += mask.iter().sum::<f32>() * sw as f32;
                let mv = g.constant(Tensor::col(mask));
                let masked = g.mul_col(sq, mv);
                let s = g.sum_all(masked);
                total_loss = Some(match total_loss {
                    None => s,
                    Some(acc) => g.add(acc, s),
                });
            }
            let mse = if let Some(loss_sum) = total_loss {
                let loss = g.scale(loss_sum, 1.0 / total_count.max(1.0));
                let loss_v = g.value(loss).get(0, 0);
                g.backward(loss);
                let grads = g.param_grads();
                ws = g.finish();
                opt.step(&mut store, &grads);
                loss_v
            } else {
                ws = g.finish();
                0.0
            };
            // The single teacher-forcing objective rides in `g_loss`; the
            // GAN-only fields map to `null` in the log.
            monitor.emit_iteration(&StepMetrics {
                iteration: it,
                d_loss: f32::NAN,
                g_loss: mse,
                gp: f32::NAN,
                wasserstein: f32::NAN,
                g_ms: step_started.elapsed().as_secs_f64() * 1e3,
                ..Default::default()
            });
            if let Some((detail, action)) = monitor.watchdog_inspect(it, &[("mse", mse)], &store) {
                match action {
                    DivergencePolicy::Warn => {}
                    DivergencePolicy::Abort | DivergencePolicy::RollbackToCheckpoint => {
                        monitor.emit_end(it + 1, started, RunOutcome::Aborted);
                        return Err(TrainError::Diverged { iteration: it, detail });
                    }
                }
            }
            monitor.maybe_heartbeat(it, iterations, started, ws.stats());
        }
        let outcome = if monitor.first_divergence().is_some() {
            RunOutcome::DivergedWarned
        } else {
            RunOutcome::Completed
        };
        monitor.emit_end(iterations, started, outcome);

        let _ = t_max;
        Ok(RnnModel { encoder, attrs: EmpiricalAttributes::fit(dataset), first, lstm, head, store, layout })
    }

    /// Records the single-step rollout tape once; [`RnnModel::predict_step`]
    /// replays it with fresh `(input, h, c)` leaf values and zero per-step
    /// tensor allocations inside the executor.
    fn build_step_plan(&self) -> StepPlan {
        let aw = self.encoder.attr_width();
        let sw = self.encoder.step_width();
        let mut g = Graph::new();
        let inp = g.constant_zeros(1, aw + sw);
        let h_in = g.constant_zeros(1, self.lstm.hidden);
        let c_in = g.constant_zeros(1, self.lstm.hidden);
        let state = dg_nn::layers::LstmState { h: h_in, c: c_in };
        let next = self.lstm.step_frozen(&mut g, &self.store, inp, state);
        let raw = self.head.forward_frozen(&mut g, &self.store, next.h);
        let pred = self.layout.apply(&mut g, raw);
        StepPlan { inp, h_in, c_in, h_out: next.h, c_out: next.c, pred, exec: g.into_executor() }
    }

    fn predict_step(
        &self,
        plan: &mut StepPlan,
        attrs: &[f32],
        prev: &[f32],
        h: &mut Tensor,
        c: &mut Tensor,
    ) -> Vec<f32> {
        let mut inp_data = attrs.to_vec();
        inp_data.extend_from_slice(prev);
        plan.exec.set_input(plan.inp, &Tensor::from_vec(1, inp_data.len(), inp_data));
        plan.exec.set_input(plan.h_in, h);
        plan.exec.set_input(plan.c_in, c);
        plan.exec.run();
        *h = plan.exec.value(plan.h_out).clone();
        *c = plan.exec.value(plan.c_out).clone();
        plan.exec.value(plan.pred).as_slice().to_vec()
    }
}

/// A recorded one-step rollout tape plus the leaf/output vars needed to
/// drive it (see [`RnnModel::build_step_plan`]).
struct StepPlan {
    exec: PlanExecutor,
    inp: Var,
    h_in: Var,
    c_in: Var,
    h_out: Var,
    c_out: Var,
    pred: Var,
}

impl GenerativeModel for RnnModel {
    fn name(&self) -> &'static str {
        "RNN"
    }

    fn generate_objects(&self, n: usize, rng: &mut dyn rand::RngCore) -> Vec<TimeSeriesObject> {
        let sw = self.encoder.step_width();
        let t_max = self.encoder.max_len();
        let flag_off = self.encoder.schema.feature_encoded_width();
        let hidden = self.lstm.hidden;
        let mut plan = self.build_step_plan();
        let mut out = Vec::with_capacity(n);
        for _ in 0..n {
            let attrs = self.attrs.sample(rng);
            let a = self.encoder.encode_attribute_rows(&[attrs]);
            let arow = a.row_slice(0).to_vec();
            let mut h = Tensor::zeros(1, hidden);
            let mut c = Tensor::zeros(1, hidden);
            let mut steps: Vec<Vec<f32>> = vec![self.first.sample(rng)];
            while steps.len() < t_max {
                let last = steps.last().expect("non-empty").clone();
                if last[flag_off + 1] >= last[flag_off] {
                    break;
                }
                steps.push(self.predict_step(&mut plan, &arow, &last, &mut h, &mut c));
            }
            let mut frow = vec![0.0_f32; t_max * sw];
            for (t, s) in steps.iter().enumerate() {
                frow[t * sw..(t + 1) * sw].copy_from_slice(s);
            }
            let len = decode_length(&frow, sw, flag_off, t_max);
            if len == t_max {
                frow[(t_max - 1) * sw + flag_off] = 0.0;
                frow[(t_max - 1) * sw + flag_off + 1] = 1.0;
            }
            let f = Tensor::from_vec(1, t_max * sw, frow);
            let m = Tensor::zeros(1, 0);
            out.extend(self.encoder.decode(&a, &m, &f));
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dg_datasets::sine::{self, SineConfig};
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn tiny_data(seed: u64) -> Dataset {
        let mut rng = StdRng::seed_from_u64(seed);
        sine::generate(
            &SineConfig { num_objects: 24, length: 16, periods: vec![4], noise_sigma: 0.02 },
            &mut rng,
        )
    }

    #[test]
    fn fit_and_generate_valid_objects() {
        let data = tiny_data(1);
        let mut rng = StdRng::seed_from_u64(2);
        let cfg = RnnConfig { hidden: 16, train_steps: 60, batch: 12, lr: 2e-3 };
        let rnn = RnnModel::fit(&data, cfg, &mut rng);
        let objs = rnn.generate_objects(6, &mut rng);
        assert_eq!(objs.len(), 6);
        for o in &objs {
            assert!(!o.is_empty() && o.len() <= 16);
            assert!(o.records.iter().all(|r| r[0].cont().is_finite()));
        }
        let _ = rnn.generate_dataset(&data.schema, 3, &mut rng);
    }

    #[test]
    fn generation_is_deterministic_given_first_record() {
        // The paper notes RNNs incorporate randomness only through R1; verify
        // the rollout is a deterministic function of (attrs, first record).
        let data = tiny_data(3);
        let mut rng = StdRng::seed_from_u64(4);
        let cfg = RnnConfig { hidden: 12, train_steps: 30, batch: 12, lr: 2e-3 };
        let rnn = RnnModel::fit(&data, cfg, &mut rng);
        // Same RNG seed => same first record and attrs => same series.
        let mut r1 = StdRng::seed_from_u64(7);
        let mut r2 = StdRng::seed_from_u64(7);
        let o1 = rnn.generate_objects(3, &mut r1);
        let o2 = rnn.generate_objects(3, &mut r2);
        assert_eq!(o1, o2);
    }

    #[test]
    fn monitored_fit_logs_mse_as_g_loss() {
        use doppelganger::telemetry::{parse_jsonl, RunEvent, RunLog, RunOutcome};

        let data = tiny_data(5);
        let mut rng = StdRng::seed_from_u64(6);
        let cfg = RnnConfig { hidden: 12, train_steps: 3, batch: 8, lr: 2e-3 };
        let (log, buf) = RunLog::in_memory();
        let mut mon = TrainMonitor::new().with_log(log).with_label("rnn");
        RnnModel::fit_monitored(&data, cfg, &mut rng, &mut mon).expect("healthy run");
        let events = parse_jsonl(&buf.contents()).expect("parse");
        assert!(matches!(&events[0], RunEvent::Header(h) if h.label == "rnn"));
        let iters: Vec<_> = events
            .iter()
            .filter_map(|e| if let RunEvent::Iteration(i) = e { Some(i) } else { None })
            .collect();
        assert_eq!(iters.len(), 3);
        assert!(iters[0].g_loss.is_some(), "the MSE objective is logged as g_loss");
        assert_eq!(iters[0].d_loss, None, "no critic in teacher forcing: logged as null");
        assert!(iters[0].g_ms > 0.0);
        assert!(matches!(events.last(), Some(RunEvent::End(e)) if e.outcome == RunOutcome::Completed));
    }
}
