//! # dg-baselines — the paper's four baseline generative models (§5.0.1)
//!
//! Each baseline implements the shared [`common::GenerativeModel`] trait so
//! the experiment harness can swap models freely:
//!
//! * [`hmm`] — Gaussian-emission hidden Markov model (Baum-Welch);
//! * [`ar`] — nonlinear auto-regressive model (`R_t = f(A, R_{t-1..t-p})`
//!   with an MLP `f`);
//! * [`rnn`] — teacher-forced LSTM fed the attributes at every step;
//! * [`naive_gan`] — the §3.3 strawman: a joint MLP WGAN-GP over
//!   `[attributes | flattened series]`.
//!
//! All models use the paper's extensions: attributes drawn from the
//! empirical multinomial, the first record from a fitted Gaussian, and the
//! §4.1.1 generation-flag technique for variable lengths.

#![warn(missing_docs)]

pub mod ar;
pub mod common;
pub mod hmm;
pub mod naive_gan;
pub mod rnn;

pub use ar::{ArConfig, ArModel};
pub use common::GenerativeModel;
pub use hmm::{HmmConfig, HmmModel};
pub use naive_gan::{NaiveGanConfig, NaiveGanModel};
pub use rnn::{RnnConfig, RnnModel};
