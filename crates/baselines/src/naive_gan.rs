//! Naive GAN baseline (§3.3, Appendix B).
//!
//! The "first GAN architecture one might think of": an MLP generator that
//! emits attributes and the whole flattened time series *jointly*, an MLP
//! discriminator, Wasserstein loss with gradient penalty. No conditional
//! structure, no batched RNN generation, no auto-normalization — the
//! configuration whose failures (Fig. 1, Fig. 8) motivate DoppelGANger.
//!
//! As in the paper, "the generated time series after the first presence of
//! `p1 < p2` will be discarded" — which is exactly what flag-based decoding
//! does.

use crate::common::GenerativeModel;
use dg_data::{BatchIter, Dataset, EncodedDataset, Encoder, EncoderConfig, Range, TimeSeriesObject};
use dg_nn::graph::Graph;
use dg_nn::layers::{Activation, Mlp};
use dg_nn::optim::Adam;
use dg_nn::parallel::num_threads;
use dg_nn::params::ParamStore;
use dg_nn::penalty::gradient_penalty;
use dg_nn::tensor::Tensor;
use dg_nn::workspace::Workspace;
use doppelganger::layout::OutputLayout;
use doppelganger::telemetry::{DivergencePolicy, RunHeader, RunOutcome, TrainError, TrainMonitor};
use doppelganger::trainer::StepMetrics;
use rand::Rng;
use std::time::Instant;

/// Naive GAN hyper-parameters.
#[derive(Debug, Clone)]
pub struct NaiveGanConfig {
    /// Noise width.
    pub noise_dim: usize,
    /// Generator hidden width (paper: 200).
    pub gen_hidden: usize,
    /// Generator hidden depth (paper: 4).
    pub gen_depth: usize,
    /// Discriminator hidden width (paper: 200).
    pub disc_hidden: usize,
    /// Discriminator hidden depth (paper: 4).
    pub disc_depth: usize,
    /// Gradient-penalty weight (paper: 10).
    pub gp_lambda: f32,
    /// Adam learning rate (paper: 0.001).
    pub lr: f32,
    /// Minibatch size (paper: 100).
    pub batch: usize,
    /// Training iterations (one d step + one g step each).
    pub train_steps: usize,
}

impl Default for NaiveGanConfig {
    fn default() -> Self {
        NaiveGanConfig {
            noise_dim: 16,
            gen_hidden: 96,
            gen_depth: 3,
            disc_hidden: 96,
            disc_depth: 3,
            gp_lambda: 10.0,
            lr: 1e-3,
            batch: 32,
            train_steps: 400,
        }
    }
}

impl NaiveGanConfig {
    /// The paper's Appendix-B configuration (4x200 MLPs, batch 100).
    pub fn paper() -> Self {
        NaiveGanConfig {
            noise_dim: 32,
            gen_hidden: 200,
            gen_depth: 4,
            disc_hidden: 200,
            disc_depth: 4,
            gp_lambda: 10.0,
            lr: 1e-3,
            batch: 100,
            train_steps: 4000,
        }
    }
}

/// A fitted naive (joint MLP) WGAN-GP.
#[derive(Debug, Clone)]
pub struct NaiveGanModel {
    config: NaiveGanConfig,
    encoder: Encoder,
    gen: Mlp,
    disc: Mlp,
    store: ParamStore,
    layout: OutputLayout,
}

impl NaiveGanModel {
    /// Fits the naive GAN on a dataset.
    pub fn fit<R: Rng + ?Sized>(dataset: &Dataset, config: NaiveGanConfig, rng: &mut R) -> Self {
        let enc_cfg = EncoderConfig { auto_normalize: false, range: Range::ZeroOne };
        let encoder = Encoder::fit(dataset, enc_cfg);
        let encoded = encoder.encode(dataset);
        let mut model = Self::initialized(encoder, config, rng);
        model.train(&encoded, rng);
        model
    }

    /// Builds an untrained model (exposed for incremental-training
    /// experiments).
    pub fn initialized<R: Rng + ?Sized>(encoder: Encoder, config: NaiveGanConfig, rng: &mut R) -> Self {
        // Joint output layout: attribute blocks followed by all steps.
        let attr_layout = OutputLayout::attributes(&encoder.schema, encoder.config.range);
        let step_layout = OutputLayout::step(&encoder.schema, encoder.config.range).tiled(encoder.max_len());
        let mut blocks = attr_layout.blocks.clone();
        for &(s, e, a) in &step_layout.blocks {
            blocks.push((attr_layout.width + s, attr_layout.width + e, a));
        }
        let layout = OutputLayout {
            blocks,
            width: attr_layout.width + step_layout.width,
            range: encoder.config.range,
        };

        let mut store = ParamStore::new();
        let gen = Mlp::new(
            &mut store,
            "naive_gen",
            config.noise_dim,
            config.gen_hidden,
            config.gen_depth,
            layout.width,
            Activation::LeakyRelu(0.2),
            Activation::Linear,
            rng,
        );
        let disc = Mlp::new(
            &mut store,
            "naive_disc",
            layout.width,
            config.disc_hidden,
            config.disc_depth,
            1,
            Activation::LeakyRelu(0.2),
            Activation::Linear,
            rng,
        );
        NaiveGanModel { config, encoder, gen, disc, store, layout }
    }

    /// Runs `config.train_steps` WGAN-GP iterations on encoded data.
    pub fn train<R: Rng + ?Sized>(&mut self, encoded: &EncodedDataset, rng: &mut R) {
        self.train_monitored(encoded, rng, &mut TrainMonitor::disabled())
            .expect("a disabled monitor has no watchdog, so training cannot fail");
    }

    /// [`NaiveGanModel::train`] with run-log and watchdog support, emitting
    /// the same JSONL event stream as `Trainer::fit_monitored`. The baseline
    /// has no checkpoint format, so
    /// [`DivergencePolicy::RollbackToCheckpoint`] degrades to an abort.
    pub fn train_monitored<R: Rng + ?Sized>(
        &mut self,
        encoded: &EncodedDataset,
        rng: &mut R,
        monitor: &mut TrainMonitor,
    ) -> Result<(), TrainError> {
        let mut d_opt = Adam::with_betas(self.config.lr, 0.5, 0.9);
        let mut g_opt = Adam::with_betas(self.config.lr, 0.5, 0.9);
        let mut batches = BatchIter::new(encoded.num_samples(), self.config.batch);
        let iterations = self.config.train_steps;
        let started = Instant::now();
        monitor.emit_header(|label, seed| RunHeader {
            label,
            seed,
            iterations,
            num_samples: encoded.num_samples(),
            batch_size: batches.batch_size(),
            d_steps_per_g: 1,
            threads: num_threads(),
            dp: false,
        });
        // One buffer pool is recycled through every d/g graph of the run.
        let mut ws = Workspace::new();
        for it in 0..iterations {
            // ---- discriminator step ----
            let d_started = Instant::now();
            let idx = batches.next_batch(rng).to_vec();
            let real = encoded.full_rows(&idx);
            let fake = self.sample_encoded_ws(idx.len(), rng, &mut ws);
            let gen_ms = d_started.elapsed().as_secs_f64() * 1e3;
            let (d_loss, gp_v, w_v) = {
                let mut g = Graph::with_workspace(std::mem::take(&mut ws));
                let rv = g.constant_copied(&real);
                let fv = g.constant_copied(&fake);
                let dr = self.disc.forward(&mut g, &self.store, rv);
                let df = self.disc.forward(&mut g, &self.store, fv);
                let mr = g.mean_all(dr);
                let mf = g.mean_all(df);
                let w = g.sub(mf, mr);
                let gp = gradient_penalty(&mut g, &self.store, &self.disc, &real, &fake, rng);
                let gp_term = g.scale(gp, self.config.gp_lambda);
                let loss = g.add(w, gp_term);
                let loss_v = g.value(loss).get(0, 0);
                let gp_v = g.value(gp).get(0, 0);
                let w_v = -g.value(w).get(0, 0);
                g.backward(loss);
                let grads = g.param_grads();
                ws = g.finish();
                d_opt.step(&mut self.store, &grads);
                (loss_v, gp_v, w_v)
            };
            let d_ms = d_started.elapsed().as_secs_f64() * 1e3;
            // ---- generator step ----
            let g_started = Instant::now();
            let g_loss = {
                let mut g = Graph::with_workspace(std::mem::take(&mut ws));
                let z = g.constant_randn(self.config.batch, self.config.noise_dim, 1.0, rng);
                let raw = self.gen.forward(&mut g, &self.store, z);
                let out = self.layout.apply(&mut g, raw);
                let score = self.disc.forward_frozen(&mut g, &self.store, out);
                let ms = g.mean_all(score);
                let loss = g.scale(ms, -1.0);
                let loss_v = g.value(loss).get(0, 0);
                g.backward(loss);
                let grads = g.param_grads();
                ws = g.finish();
                g_opt.step(&mut self.store, &grads);
                loss_v
            };
            let g_ms = g_started.elapsed().as_secs_f64() * 1e3;
            monitor.emit_iteration(&StepMetrics {
                iteration: it,
                d_loss,
                g_loss,
                gp: gp_v,
                wasserstein: w_v,
                d_ms,
                g_ms,
                gen_ms,
            });
            let losses = [("d_loss", d_loss), ("g_loss", g_loss), ("gp", gp_v), ("wasserstein", w_v)];
            if let Some((detail, action)) = monitor.watchdog_inspect(it, &losses, &self.store) {
                match action {
                    DivergencePolicy::Warn => {}
                    DivergencePolicy::Abort | DivergencePolicy::RollbackToCheckpoint => {
                        monitor.emit_end(it + 1, started, RunOutcome::Aborted);
                        return Err(TrainError::Diverged { iteration: it, detail });
                    }
                }
            }
            monitor.maybe_heartbeat(it, iterations, started, ws.stats());
        }
        let outcome = if monitor.first_divergence().is_some() {
            RunOutcome::DivergedWarned
        } else {
            RunOutcome::Completed
        };
        monitor.emit_end(iterations, started, outcome);
        Ok(())
    }

    /// Generates a batch of encoded full rows from the frozen generator.
    pub fn sample_encoded<R: Rng + ?Sized>(&self, n: usize, rng: &mut R) -> Tensor {
        let mut ws = Workspace::unpooled();
        self.sample_encoded_ws(n, rng, &mut ws)
    }

    /// [`NaiveGanModel::sample_encoded`] drawing graph buffers from `ws`.
    fn sample_encoded_ws<R: Rng + ?Sized>(&self, n: usize, rng: &mut R, ws: &mut Workspace) -> Tensor {
        let mut g = Graph::with_workspace(std::mem::take(ws));
        let z = g.constant_randn(n, self.config.noise_dim, 1.0, rng);
        let raw = self.gen.forward_frozen(&mut g, &self.store, z);
        let out = self.layout.apply(&mut g, raw);
        let out = g.take_value(out);
        *ws = g.finish();
        out
    }

    /// Critic score for given encoded full rows (used by membership
    /// inference experiments).
    pub fn critic_scores(&self, rows: &Tensor) -> Vec<f32> {
        let mut g = Graph::new();
        let rv = g.constant(rows.clone());
        let s = self.disc.forward_frozen(&mut g, &self.store, rv);
        g.value(s).as_slice().to_vec()
    }
}

impl GenerativeModel for NaiveGanModel {
    fn name(&self) -> &'static str {
        "Naive GAN"
    }

    fn generate_objects(&self, n: usize, rng: &mut dyn rand::RngCore) -> Vec<TimeSeriesObject> {
        let aw = self.encoder.attr_width();
        let full = self.sample_encoded(n, rng);
        let attrs = full.slice_cols(0, aw);
        let feats = full.slice_cols(aw, full.cols());
        let m = Tensor::zeros(n, 0);
        self.encoder.decode(&attrs, &m, &feats)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dg_datasets::sine::{self, SineConfig};
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn tiny_config() -> NaiveGanConfig {
        NaiveGanConfig {
            noise_dim: 8,
            gen_hidden: 24,
            gen_depth: 2,
            disc_hidden: 24,
            disc_depth: 2,
            gp_lambda: 10.0,
            lr: 1e-3,
            batch: 8,
            train_steps: 20,
        }
    }

    #[test]
    fn fit_and_generate_valid_objects() {
        let mut rng = StdRng::seed_from_u64(1);
        let data = sine::generate(
            &SineConfig { num_objects: 16, length: 12, periods: vec![4], noise_sigma: 0.05 },
            &mut rng,
        );
        let gan = NaiveGanModel::fit(&data, tiny_config(), &mut rng);
        let objs = gan.generate_objects(6, &mut rng);
        assert_eq!(objs.len(), 6);
        for o in &objs {
            assert!(o.len() <= 12);
            assert!(o.records.iter().all(|r| r[0].cont().is_finite()));
        }
        let _ = gan.generate_dataset(&data.schema, 3, &mut rng);
    }

    #[test]
    fn layout_covers_attrs_and_steps() {
        let mut rng = StdRng::seed_from_u64(2);
        let data = sine::generate(
            &SineConfig { num_objects: 8, length: 6, periods: vec![3], noise_sigma: 0.0 },
            &mut rng,
        );
        let enc_cfg = EncoderConfig { auto_normalize: false, range: Range::ZeroOne };
        let encoder = Encoder::fit(&data, enc_cfg);
        let encoded = encoder.encode(&data);
        let gan = NaiveGanModel::initialized(encoder, tiny_config(), &mut rng);
        assert_eq!(gan.layout.width, encoded.full_width());
        let s = gan.sample_encoded(3, &mut rng);
        assert_eq!(s.shape(), (3, encoded.full_width()));
    }

    #[test]
    fn critic_scores_have_one_per_row() {
        let mut rng = StdRng::seed_from_u64(3);
        let data = sine::generate(
            &SineConfig { num_objects: 8, length: 6, periods: vec![3], noise_sigma: 0.0 },
            &mut rng,
        );
        let gan = NaiveGanModel::fit(&data, tiny_config(), &mut rng);
        let rows = gan.sample_encoded(5, &mut rng);
        let scores = gan.critic_scores(&rows);
        assert_eq!(scores.len(), 5);
        assert!(scores.iter().all(|s| s.is_finite()));
    }

    #[test]
    fn monitored_training_logs_iterations_and_aborts_on_divergence() {
        use doppelganger::telemetry::{parse_jsonl, RunEvent, RunLog, RunOutcome, Watchdog};

        let mut rng = StdRng::seed_from_u64(5);
        let data = sine::generate(
            &SineConfig { num_objects: 12, length: 8, periods: vec![4], noise_sigma: 0.02 },
            &mut rng,
        );
        let enc_cfg = EncoderConfig { auto_normalize: false, range: Range::ZeroOne };
        let encoder = Encoder::fit(&data, enc_cfg);
        let encoded = encoder.encode(&data);
        let mut cfg = tiny_config();
        cfg.train_steps = 3;
        let mut gan = NaiveGanModel::initialized(encoder, cfg, &mut rng);

        let (log, buf) = RunLog::in_memory();
        let mut mon = TrainMonitor::new().with_log(log).with_label("naive-gan");
        gan.train_monitored(&encoded, &mut rng, &mut mon).expect("healthy run");
        let events = parse_jsonl(&buf.contents()).expect("parse");
        assert!(matches!(&events[0], RunEvent::Header(h) if h.label == "naive-gan" && !h.dp));
        let iters = events.iter().filter(|e| matches!(e, RunEvent::Iteration(_))).count();
        assert_eq!(iters, 3);
        assert!(matches!(events.last(), Some(RunEvent::End(e)) if e.outcome == RunOutcome::Completed));

        // Poison a generator weight: losses go non-finite and the run aborts.
        let id = gan.gen.params()[0];
        gan.store.get_mut(id).set(0, 0, f32::NAN);
        let mut mon = TrainMonitor::new()
            .with_watchdog(Watchdog::with_policy(doppelganger::telemetry::DivergencePolicy::Abort));
        let err = gan.train_monitored(&encoded, &mut rng, &mut mon).expect_err("must abort");
        let TrainError::Diverged { iteration, .. } = err else { panic!("expected a divergence error") };
        assert_eq!(iteration, 0);
    }
}
