//! Hidden Markov model baseline (§5.0.1).
//!
//! A Gaussian-emission HMM fitted with Baum-Welch on the globally-normalized
//! encoded features. As in the paper, attributes are drawn independently
//! from the empirical multinomial of the training data. Variable lengths are
//! reproduced by sampling from the empirical length distribution — for a
//! memoryless model this is the exact equivalent of the generation-flag
//! technique (a per-step termination flag marginalizes to the empirical
//! length histogram).

use crate::common::{EmpiricalAttributes, GenerativeModel};
use dg_data::{Dataset, Encoder, EncoderConfig, Range, TimeSeriesObject};
use dg_nn::tensor::Tensor;
use rand::Rng;
use rand_distr::{Distribution, Normal};

/// HMM hyper-parameters.
#[derive(Debug, Clone)]
pub struct HmmConfig {
    /// Number of hidden states.
    pub num_states: usize,
    /// Baum-Welch (EM) iterations.
    pub em_iterations: usize,
    /// Variance floor for the diagonal Gaussian emissions.
    pub var_floor: f32,
}

impl Default for HmmConfig {
    fn default() -> Self {
        HmmConfig { num_states: 10, em_iterations: 15, var_floor: 1e-4 }
    }
}

/// A fitted Gaussian HMM over encoded feature steps.
#[derive(Debug, Clone)]
pub struct HmmModel {
    config: HmmConfig,
    encoder: Encoder,
    attrs: EmpiricalAttributes,
    lengths: Vec<usize>,
    /// Initial state distribution, length `K`.
    pi: Vec<f32>,
    /// Row-stochastic transition matrix, `K x K`.
    trans: Tensor,
    /// Emission means, `K x D`.
    means: Tensor,
    /// Emission variances (diagonal), `K x D`.
    vars: Tensor,
}

impl HmmModel {
    /// Fits the HMM on a dataset.
    pub fn fit<R: Rng + ?Sized>(dataset: &Dataset, config: HmmConfig, rng: &mut R) -> Self {
        let enc_cfg = EncoderConfig { auto_normalize: false, range: Range::ZeroOne };
        let encoder = Encoder::fit(dataset, enc_cfg);
        let encoded = encoder.encode(dataset);
        let d = encoder.schema.feature_encoded_width();
        let sw = encoder.step_width();

        // Collect sequences of encoded feature vectors (flags stripped).
        let mut seqs: Vec<Vec<Vec<f32>>> = Vec::with_capacity(dataset.len());
        for (i, &len) in encoded.lengths.iter().enumerate() {
            let row = encoded.features.row_slice(i);
            let seq: Vec<Vec<f32>> = (0..len).map(|t| row[t * sw..t * sw + d].to_vec()).collect();
            if !seq.is_empty() {
                seqs.push(seq);
            }
        }
        assert!(!seqs.is_empty(), "HMM requires at least one non-empty series");

        let k = config.num_states;
        // Initialize means from random records, uniform transitions.
        let all_records: Vec<&Vec<f32>> = seqs.iter().flatten().collect();
        let mut means = Tensor::zeros(k, d);
        for s in 0..k {
            let r = all_records[rng.gen_range(0..all_records.len())];
            for (j, &v) in r.iter().enumerate() {
                means.set(s, j, v + 0.01 * rng.gen_range(-1.0..1.0_f32));
            }
        }
        let mut vars = Tensor::full(k, d, 0.05);
        let mut pi = vec![1.0 / k as f32; k];
        let mut trans = Tensor::full(k, k, 1.0 / k as f32);

        for _ in 0..config.em_iterations {
            // Accumulators.
            let mut pi_acc = vec![1e-6_f32; k];
            let mut trans_acc = Tensor::full(k, k, 1e-6);
            let mut mean_acc = Tensor::zeros(k, d);
            let mut sq_acc = Tensor::zeros(k, d);
            let mut gamma_acc = vec![1e-6_f32; k];

            for seq in &seqs {
                let t_len = seq.len();
                // Emission likelihoods b[t][s] with per-step scaling.
                let mut b = vec![vec![0.0_f32; k]; t_len];
                for (t, x) in seq.iter().enumerate() {
                    for (s, bv) in b[t].iter_mut().enumerate() {
                        *bv = emission_prob(x, means.row_slice(s), vars.row_slice(s), config.var_floor);
                    }
                }
                // Scaled forward.
                let mut alpha = vec![vec![0.0_f32; k]; t_len];
                let mut scale = vec![0.0_f32; t_len];
                for s in 0..k {
                    alpha[0][s] = pi[s] * b[0][s];
                }
                normalize(&mut alpha[0], &mut scale[0]);
                for t in 1..t_len {
                    for s in 0..k {
                        let mut acc = 0.0;
                        for (sp, &a) in alpha[t - 1].iter().enumerate() {
                            acc += a * trans.get(sp, s);
                        }
                        alpha[t][s] = acc * b[t][s];
                    }
                    let (prev, cur) = alpha.split_at_mut(t);
                    let _ = prev;
                    normalize(&mut cur[0], &mut scale[t]);
                }
                // Scaled backward.
                let mut beta = vec![vec![1.0_f32; k]; t_len];
                for t in (0..t_len - 1).rev() {
                    for s in 0..k {
                        let mut acc = 0.0;
                        for sn in 0..k {
                            acc += trans.get(s, sn) * b[t + 1][sn] * beta[t + 1][sn];
                        }
                        beta[t][s] = acc / scale[t + 1].max(1e-30);
                    }
                }
                // Accumulate statistics.
                for t in 0..t_len {
                    let mut gamma = vec![0.0_f32; k];
                    let mut gsum = 0.0;
                    for s in 0..k {
                        gamma[s] = alpha[t][s] * beta[t][s];
                        gsum += gamma[s];
                    }
                    if gsum <= 0.0 {
                        continue;
                    }
                    for s in 0..k {
                        gamma[s] /= gsum;
                        if t == 0 {
                            pi_acc[s] += gamma[s];
                        }
                        gamma_acc[s] += gamma[s];
                        for (j, &x) in seq[t].iter().enumerate() {
                            mean_acc.set(s, j, mean_acc.get(s, j) + gamma[s] * x);
                            sq_acc.set(s, j, sq_acc.get(s, j) + gamma[s] * x * x);
                        }
                    }
                    if t + 1 < t_len {
                        // xi accumulation (unnormalized then renormalized).
                        let mut xsum = 0.0;
                        let mut xi = vec![0.0_f32; k * k];
                        for s in 0..k {
                            for sn in 0..k {
                                let v = alpha[t][s] * trans.get(s, sn) * b[t + 1][sn] * beta[t + 1][sn];
                                xi[s * k + sn] = v;
                                xsum += v;
                            }
                        }
                        if xsum > 0.0 {
                            for s in 0..k {
                                for sn in 0..k {
                                    trans_acc.set(s, sn, trans_acc.get(s, sn) + xi[s * k + sn] / xsum);
                                }
                            }
                        }
                    }
                }
            }

            // M step.
            let pisum: f32 = pi_acc.iter().sum();
            for (p, a) in pi.iter_mut().zip(&pi_acc) {
                *p = a / pisum;
            }
            for (s, &g) in gamma_acc.iter().enumerate() {
                let rowsum: f32 = (0..k).map(|sn| trans_acc.get(s, sn)).sum();
                for sn in 0..k {
                    trans.set(s, sn, trans_acc.get(s, sn) / rowsum);
                }
                for j in 0..d {
                    let m = mean_acc.get(s, j) / g;
                    means.set(s, j, m);
                    let v = (sq_acc.get(s, j) / g - m * m).max(config.var_floor);
                    vars.set(s, j, v);
                }
            }
        }

        HmmModel {
            config,
            encoder,
            attrs: EmpiricalAttributes::fit(dataset),
            lengths: dataset.lengths(),
            pi,
            trans,
            means,
            vars,
        }
    }

    /// Average per-record log-likelihood of a dataset under the fitted HMM
    /// (useful as a fit diagnostic).
    pub fn avg_log_likelihood(&self, dataset: &Dataset) -> f64 {
        let encoded = self.encoder.encode(dataset);
        let d = self.encoder.schema.feature_encoded_width();
        let sw = self.encoder.step_width();
        let k = self.config.num_states;
        let mut total = 0.0_f64;
        let mut count = 0usize;
        for (i, &len) in encoded.lengths.iter().enumerate() {
            if len == 0 {
                continue;
            }
            let row = encoded.features.row_slice(i);
            let mut alpha = vec![0.0_f32; k];
            let mut ll = 0.0_f64;
            for t in 0..len {
                let x = &row[t * sw..t * sw + d];
                let mut next = vec![0.0_f32; k];
                for (s, nx) in next.iter_mut().enumerate() {
                    let prior = if t == 0 {
                        self.pi[s]
                    } else {
                        (0..k).map(|sp| alpha[sp] * self.trans.get(sp, s)).sum()
                    };
                    *nx = prior
                        * emission_prob(
                            x,
                            self.means.row_slice(s),
                            self.vars.row_slice(s),
                            self.config.var_floor,
                        );
                }
                let scale: f32 = next.iter().sum();
                ll += (scale.max(1e-30) as f64).ln();
                for v in &mut next {
                    *v /= scale.max(1e-30);
                }
                alpha = next;
            }
            total += ll;
            count += len;
        }
        total / count.max(1) as f64
    }

    fn sample_sequence<R: Rng + ?Sized>(&self, len: usize, rng: &mut R) -> Vec<Vec<f32>> {
        let k = self.config.num_states;
        let mut out = Vec::with_capacity(len);
        let mut state = sample_categorical(&self.pi, rng);
        for t in 0..len {
            if t > 0 {
                let row: Vec<f32> = (0..k).map(|sn| self.trans.get(state, sn)).collect();
                state = sample_categorical(&row, rng);
            }
            let step: Vec<f32> = (0..self.means.cols())
                .map(|j| {
                    let n = Normal::new(self.means.get(state, j), self.vars.get(state, j).sqrt())
                        .expect("valid normal");
                    n.sample(rng)
                })
                .collect();
            out.push(step);
        }
        out
    }
}

impl GenerativeModel for HmmModel {
    fn name(&self) -> &'static str {
        "HMM"
    }

    fn generate_objects(&self, n: usize, rng: &mut dyn rand::RngCore) -> Vec<TimeSeriesObject> {
        let sw = self.encoder.step_width();
        let d = self.encoder.schema.feature_encoded_width();
        let t_max = self.encoder.max_len();
        let mut out = Vec::with_capacity(n);
        for _ in 0..n {
            let attrs = self.attrs.sample(rng);
            let len = self.lengths[rng.gen_range(0..self.lengths.len())].min(t_max).max(1);
            let seq = self.sample_sequence(len, rng);
            let mut frow = vec![0.0_f32; t_max * sw];
            for (t, step) in seq.iter().enumerate() {
                frow[t * sw..t * sw + d].copy_from_slice(step);
                if t + 1 == len {
                    frow[t * sw + d + 1] = 1.0;
                } else {
                    frow[t * sw + d] = 1.0;
                }
            }
            let a = self.encoder.encode_attribute_rows(&[attrs]);
            let f = Tensor::from_vec(1, t_max * sw, frow);
            let m = Tensor::zeros(1, 0);
            out.extend(self.encoder.decode(&a, &m, &f));
        }
        out
    }
}

fn emission_prob(x: &[f32], mean: &[f32], var: &[f32], floor: f32) -> f32 {
    let mut logp = 0.0_f32;
    for ((&xv, &m), &v) in x.iter().zip(mean).zip(var) {
        let v = v.max(floor);
        logp += -0.5 * ((xv - m) * (xv - m) / v + v.ln() + (2.0 * std::f32::consts::PI).ln());
    }
    logp.exp().max(1e-30)
}

fn normalize(v: &mut [f32], scale: &mut f32) {
    let s: f32 = v.iter().sum();
    *scale = s.max(1e-30);
    for x in v {
        *x /= s.max(1e-30);
    }
}

fn sample_categorical<R: Rng + ?Sized>(probs: &[f32], rng: &mut R) -> usize {
    let total: f32 = probs.iter().sum();
    let mut u = rng.gen_range(0.0..total.max(1e-30));
    for (i, &p) in probs.iter().enumerate() {
        if u < p {
            return i;
        }
        u -= p;
    }
    probs.len() - 1
}

#[cfg(test)]
mod tests {
    use super::*;
    use dg_datasets::sine::{self, SineConfig};
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn tiny_data(seed: u64) -> Dataset {
        let mut rng = StdRng::seed_from_u64(seed);
        sine::generate(
            &SineConfig { num_objects: 30, length: 20, periods: vec![5, 10], noise_sigma: 0.05 },
            &mut rng,
        )
    }

    #[test]
    fn fit_and_generate_valid_objects() {
        let data = tiny_data(1);
        let mut rng = StdRng::seed_from_u64(2);
        let hmm =
            HmmModel::fit(&data, HmmConfig { num_states: 4, em_iterations: 5, var_floor: 1e-4 }, &mut rng);
        let objs = hmm.generate_objects(10, &mut rng);
        assert_eq!(objs.len(), 10);
        for o in &objs {
            assert!(!o.is_empty() && o.len() <= 20);
            assert!(o.records.iter().all(|r| r[0].cont().is_finite()));
        }
        // Generated objects validate against the schema.
        let _ = hmm.generate_dataset(&data.schema, 5, &mut rng);
    }

    #[test]
    fn em_improves_likelihood() {
        let data = tiny_data(3);
        let mut rng1 = StdRng::seed_from_u64(4);
        let mut rng2 = StdRng::seed_from_u64(4);
        let h0 =
            HmmModel::fit(&data, HmmConfig { num_states: 4, em_iterations: 1, var_floor: 1e-4 }, &mut rng1);
        let h1 =
            HmmModel::fit(&data, HmmConfig { num_states: 4, em_iterations: 10, var_floor: 1e-4 }, &mut rng2);
        let ll0 = h0.avg_log_likelihood(&data);
        let ll1 = h1.avg_log_likelihood(&data);
        assert!(ll1 >= ll0 - 0.05, "EM should not hurt likelihood much: {ll0} -> {ll1}");
    }

    #[test]
    fn lengths_are_resampled_from_training() {
        let data = tiny_data(5);
        let mut rng = StdRng::seed_from_u64(6);
        let hmm =
            HmmModel::fit(&data, HmmConfig { num_states: 3, em_iterations: 2, var_floor: 1e-4 }, &mut rng);
        // Training data is constant-length 20, so generated must be too.
        let objs = hmm.generate_objects(8, &mut rng);
        assert!(objs.iter().all(|o| o.len() == 20));
    }

    #[test]
    fn transition_rows_are_stochastic() {
        let data = tiny_data(7);
        let mut rng = StdRng::seed_from_u64(8);
        let hmm =
            HmmModel::fit(&data, HmmConfig { num_states: 5, em_iterations: 3, var_floor: 1e-4 }, &mut rng);
        for s in 0..5 {
            let rowsum: f32 = (0..5).map(|sn| hmm.trans.get(s, sn)).sum();
            assert!((rowsum - 1.0).abs() < 1e-4, "row {s} sums to {rowsum}");
        }
        let pisum: f32 = hmm.pi.iter().sum();
        assert!((pisum - 1.0).abs() < 1e-4);
    }
}
