//! Nonlinear auto-regressive baseline (§5.0.1).
//!
//! Learns `R_t = f(A, R_{t-1}, ..., R_{t-p})` with `f` a multi-layer
//! perceptron (the paper's "more advanced version" of AR). Attributes are
//! drawn from the empirical multinomial; the first record from a fitted
//! Gaussian; variable lengths use the generation-flag technique (the flag
//! pair is part of each encoded step and is predicted like any other
//! output).

use crate::common::{EmpiricalAttributes, FirstRecordGaussian, GenerativeModel};
use dg_data::{decode_length, BatchIter, Dataset, Encoder, EncoderConfig, Range, TimeSeriesObject};
use dg_nn::graph::Graph;
use dg_nn::layers::{Activation, Mlp};
use dg_nn::optim::Adam;
use dg_nn::params::ParamStore;
use dg_nn::tensor::Tensor;
use doppelganger::layout::OutputLayout;
use rand::Rng;

/// AR hyper-parameters.
#[derive(Debug, Clone)]
pub struct ArConfig {
    /// Auto-regressive order `p` (paper: 3).
    pub p: usize,
    /// MLP hidden width (paper: 200).
    pub hidden: usize,
    /// MLP hidden depth (paper: 4).
    pub depth: usize,
    /// Training minibatch steps.
    pub train_steps: usize,
    /// Minibatch size (paper: 100).
    pub batch: usize,
    /// Adam learning rate (paper: 0.001).
    pub lr: f32,
}

impl Default for ArConfig {
    fn default() -> Self {
        ArConfig { p: 3, hidden: 96, depth: 3, train_steps: 600, batch: 64, lr: 1e-3 }
    }
}

impl ArConfig {
    /// The paper's Appendix-B configuration (4x200 MLP).
    pub fn paper() -> Self {
        ArConfig { p: 3, hidden: 200, depth: 4, train_steps: 2000, batch: 100, lr: 1e-3 }
    }
}

/// A fitted nonlinear AR model.
#[derive(Debug, Clone)]
pub struct ArModel {
    config: ArConfig,
    encoder: Encoder,
    attrs: EmpiricalAttributes,
    first: FirstRecordGaussian,
    mlp: Mlp,
    store: ParamStore,
    layout: OutputLayout,
}

impl ArModel {
    /// Fits the AR model on a dataset.
    pub fn fit<R: Rng + ?Sized>(dataset: &Dataset, config: ArConfig, rng: &mut R) -> Self {
        let enc_cfg = EncoderConfig { auto_normalize: false, range: Range::ZeroOne };
        let encoder = Encoder::fit(dataset, enc_cfg);
        let encoded = encoder.encode(dataset);
        let sw = encoder.step_width();
        let aw = encoder.attr_width();
        let layout = OutputLayout::step(&encoder.schema, enc_cfg.range);

        // Build the supervised training set: inputs [A | s_{t-1} .. s_{t-p}]
        // (zero-padded history), target s_t, for 1 <= t < len.
        let mut xs: Vec<f32> = Vec::new();
        let mut ys: Vec<f32> = Vec::new();
        let mut firsts: Vec<f32> = Vec::new();
        let in_w = aw + config.p * sw;
        for (i, &len) in encoded.lengths.iter().enumerate() {
            let arow = encoded.attributes.row_slice(i);
            let frow = encoded.features.row_slice(i);
            if len > 0 {
                firsts.extend_from_slice(&frow[0..sw]);
            }
            for t in 1..len {
                xs.extend_from_slice(arow);
                for j in 1..=config.p {
                    if t >= j {
                        xs.extend_from_slice(&frow[(t - j) * sw..(t - j + 1) * sw]);
                    } else {
                        xs.extend(std::iter::repeat_n(0.0, sw));
                    }
                }
                ys.extend_from_slice(&frow[t * sw..(t + 1) * sw]);
            }
        }
        let n = ys.len() / sw;
        assert!(n > 0, "AR model needs series of length >= 2");
        let x = Tensor::from_vec(n, in_w, xs);
        let y = Tensor::from_vec(n, sw, ys);
        let first = FirstRecordGaussian::fit(&Tensor::from_vec(firsts.len() / sw, sw, firsts));

        let mut store = ParamStore::new();
        let mlp = Mlp::new(
            &mut store,
            "ar",
            in_w,
            config.hidden,
            config.depth,
            sw,
            Activation::LeakyRelu(0.2),
            Activation::Linear,
            rng,
        );
        let mut opt = Adam::with_betas(config.lr, 0.9, 0.999);
        let mut batches = BatchIter::new(n, config.batch);
        for _ in 0..config.train_steps {
            let idx = batches.next_batch(rng).to_vec();
            let xb = x.gather_rows(&idx);
            let yb = y.gather_rows(&idx);
            let mut g = Graph::new();
            let xv = g.constant(xb);
            let raw = mlp.forward(&mut g, &store, xv);
            let pred = layout.apply(&mut g, raw);
            let tv = g.constant(yb);
            let d = g.sub(pred, tv);
            let sq = g.square(d);
            let loss = g.mean_all(sq);
            g.backward(loss);
            opt.step(&mut store, &g.param_grads());
        }

        ArModel { config, encoder, attrs: EmpiricalAttributes::fit(dataset), first, mlp, store, layout }
    }

    /// Mean squared error of one-step-ahead prediction on a dataset
    /// (fit diagnostic).
    pub fn one_step_mse(&self, dataset: &Dataset) -> f32 {
        let encoded = self.encoder.encode(dataset);
        let sw = self.encoder.step_width();
        let aw = self.encoder.attr_width();
        let mut err = 0.0;
        let mut count = 0;
        for (i, &len) in encoded.lengths.iter().enumerate() {
            let arow = encoded.attributes.row_slice(i);
            let frow = encoded.features.row_slice(i);
            for t in 1..len {
                let mut x = Vec::with_capacity(aw + self.config.p * sw);
                x.extend_from_slice(arow);
                for j in 1..=self.config.p {
                    if t >= j {
                        x.extend_from_slice(&frow[(t - j) * sw..(t - j + 1) * sw]);
                    } else {
                        x.extend(std::iter::repeat_n(0.0, sw));
                    }
                }
                let pred = self.predict_step(&x);
                for (p, &y) in pred.iter().zip(&frow[t * sw..(t + 1) * sw]) {
                    err += (p - y) * (p - y);
                }
                count += sw;
            }
        }
        err / count.max(1) as f32
    }

    fn predict_step(&self, x: &[f32]) -> Vec<f32> {
        let mut g = Graph::new();
        let xv = g.constant(Tensor::from_vec(1, x.len(), x.to_vec()));
        let raw = self.mlp.forward_frozen(&mut g, &self.store, xv);
        let pred = self.layout.apply(&mut g, raw);
        g.value(pred).as_slice().to_vec()
    }
}

impl GenerativeModel for ArModel {
    fn name(&self) -> &'static str {
        "AR"
    }

    fn generate_objects(&self, n: usize, rng: &mut dyn rand::RngCore) -> Vec<TimeSeriesObject> {
        let sw = self.encoder.step_width();
        let aw = self.encoder.attr_width();
        let t_max = self.encoder.max_len();
        let flag_off = self.encoder.schema.feature_encoded_width();
        let mut out = Vec::with_capacity(n);
        for _ in 0..n {
            let attrs = self.attrs.sample(rng);
            let a = self.encoder.encode_attribute_rows(&[attrs]);
            let arow = a.row_slice(0).to_vec();
            let mut steps: Vec<Vec<f32>> = vec![self.first.sample(rng)];
            while steps.len() < t_max {
                let last = steps.last().expect("non-empty");
                if last[flag_off + 1] >= last[flag_off] {
                    break; // generation flag signalled the end
                }
                let mut x = Vec::with_capacity(aw + self.config.p * sw);
                x.extend_from_slice(&arow);
                let t = steps.len();
                for j in 1..=self.config.p {
                    if t >= j {
                        x.extend_from_slice(&steps[t - j]);
                    } else {
                        x.extend(std::iter::repeat_n(0.0, sw));
                    }
                }
                steps.push(self.predict_step(&x));
            }
            let mut frow = vec![0.0_f32; t_max * sw];
            for (t, s) in steps.iter().enumerate() {
                frow[t * sw..(t + 1) * sw].copy_from_slice(s);
            }
            // If nothing signalled an end, force the final step's end flag so
            // decode sees a complete series.
            let len = decode_length(&frow, sw, flag_off, t_max);
            if len == t_max {
                frow[(t_max - 1) * sw + flag_off] = 0.0;
                frow[(t_max - 1) * sw + flag_off + 1] = 1.0;
            }
            let f = Tensor::from_vec(1, t_max * sw, frow);
            let m = Tensor::zeros(1, 0);
            out.extend(self.encoder.decode(&a, &m, &f));
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dg_datasets::sine::{self, SineConfig};
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn tiny_data(seed: u64) -> Dataset {
        let mut rng = StdRng::seed_from_u64(seed);
        sine::generate(
            &SineConfig { num_objects: 30, length: 20, periods: vec![5], noise_sigma: 0.02 },
            &mut rng,
        )
    }

    fn tiny_config(steps: usize) -> ArConfig {
        ArConfig { p: 3, hidden: 24, depth: 2, train_steps: steps, batch: 32, lr: 2e-3 }
    }

    #[test]
    fn training_reduces_one_step_mse() {
        let data = tiny_data(1);
        let mut r1 = StdRng::seed_from_u64(2);
        let mut r2 = StdRng::seed_from_u64(2);
        let untrained = ArModel::fit(&data, tiny_config(1), &mut r1);
        let trained = ArModel::fit(&data, tiny_config(400), &mut r2);
        let e0 = untrained.one_step_mse(&data);
        let e1 = trained.one_step_mse(&data);
        assert!(e1 < e0 * 0.6, "training should reduce MSE: {e0} -> {e1}");
    }

    #[test]
    fn generates_valid_objects() {
        let data = tiny_data(3);
        let mut rng = StdRng::seed_from_u64(4);
        let ar = ArModel::fit(&data, tiny_config(150), &mut rng);
        let objs = ar.generate_objects(8, &mut rng);
        assert_eq!(objs.len(), 8);
        for o in &objs {
            assert!(!o.is_empty() && o.len() <= 20);
            assert!(o.records.iter().all(|r| r[0].cont().is_finite()));
        }
        let _ = ar.generate_dataset(&data.schema, 4, &mut rng);
    }

    #[test]
    fn attributes_come_from_training_distribution() {
        let data = tiny_data(5);
        let mut rng = StdRng::seed_from_u64(6);
        let ar = ArModel::fit(&data, tiny_config(50), &mut rng);
        let objs = ar.generate_objects(20, &mut rng);
        for o in &objs {
            assert!(data.objects.iter().any(|d| d.attributes == o.attributes));
        }
    }
}
