//! Shared machinery for the baseline generative models.
//!
//! All four baselines share the paper's §5.0.1 extensions: attributes are
//! drawn from the empirical multinomial of the training data (there is no
//! natural way to jointly model them), the first record is drawn from a
//! fitted Gaussian, and variable lengths use the same generation-flag
//! technique as DoppelGANger (§4.1.1).

use dg_data::{Dataset, TimeSeriesObject, Value};
use dg_nn::tensor::Tensor;
use rand::Rng;
use rand_distr::{Distribution, Normal};

/// Samples attribute rows from the empirical (multinomial) distribution of a
/// training set, by uniform draws over the observed rows.
#[derive(Debug, Clone)]
pub struct EmpiricalAttributes {
    rows: Vec<Vec<Value>>,
}

impl EmpiricalAttributes {
    /// Captures the attribute rows of a dataset.
    pub fn fit(dataset: &Dataset) -> Self {
        assert!(!dataset.is_empty(), "cannot fit attributes on an empty dataset");
        EmpiricalAttributes { rows: dataset.objects.iter().map(|o| o.attributes.clone()).collect() }
    }

    /// Draws one attribute row.
    pub fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> Vec<Value> {
        self.rows[rng.gen_range(0..self.rows.len())].clone()
    }

    /// Draws `n` attribute rows.
    pub fn sample_many<R: Rng + ?Sized>(&self, n: usize, rng: &mut R) -> Vec<Vec<Value>> {
        (0..n).map(|_| self.sample(rng)).collect()
    }
}

/// Per-dimension Gaussian fitted to the *first encoded record* of each
/// training series — the paper's "R1 is drawn from a Gaussian distribution
/// learned from training data".
#[derive(Debug, Clone)]
pub struct FirstRecordGaussian {
    mean: Vec<f32>,
    std: Vec<f32>,
}

impl FirstRecordGaussian {
    /// Fits on rows of encoded first records (`N x dim`).
    pub fn fit(rows: &Tensor) -> Self {
        let n = rows.rows().max(1) as f32;
        let d = rows.cols();
        let mut mean = vec![0.0_f32; d];
        for r in 0..rows.rows() {
            for (m, &v) in mean.iter_mut().zip(rows.row_slice(r)) {
                *m += v;
            }
        }
        for m in &mut mean {
            *m /= n;
        }
        let mut var = vec![0.0_f32; d];
        for r in 0..rows.rows() {
            for ((s, &v), m) in var.iter_mut().zip(rows.row_slice(r)).zip(&mean) {
                *s += (v - m) * (v - m);
            }
        }
        let std = var.into_iter().map(|v| (v / n).sqrt().max(1e-4)).collect();
        FirstRecordGaussian { mean, std }
    }

    /// Dimensionality of the fitted record.
    pub fn dim(&self) -> usize {
        self.mean.len()
    }

    /// Draws one encoded first record.
    pub fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> Vec<f32> {
        self.mean
            .iter()
            .zip(&self.std)
            .map(|(&m, &s)| {
                let n = Normal::new(m, s).expect("valid normal");
                n.sample(rng)
            })
            .collect()
    }
}

/// A trained generative model that can synthesize datasets — the common
/// interface of DoppelGANger and all baselines in the experiment harness.
pub trait GenerativeModel {
    /// Human-readable model name used in tables ("DoppelGANger", "AR", ...).
    fn name(&self) -> &'static str;

    /// Generates `n` synthetic objects.
    fn generate_objects(&self, n: usize, rng: &mut dyn rand::RngCore) -> Vec<TimeSeriesObject>;

    /// Generates `n` objects as a dataset with the training schema.
    fn generate_dataset(&self, schema: &dg_data::Schema, n: usize, rng: &mut dyn rand::RngCore) -> Dataset {
        Dataset::new(schema.clone(), self.generate_objects(n, rng))
    }
}

/// Extracts the per-step encoded feature matrix (steps x step_width) of one
/// sample from a flattened encoded row.
pub fn steps_of_row(row: &[f32], step_width: usize) -> Vec<&[f32]> {
    row.chunks(step_width).collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use dg_datasets::sine::{self, SineConfig};
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn empirical_attributes_resample_training_rows() {
        let mut rng = StdRng::seed_from_u64(1);
        let data = sine::generate(&SineConfig::default(), &mut rng);
        let emp = EmpiricalAttributes::fit(&data);
        for row in emp.sample_many(50, &mut rng) {
            assert!(data.objects.iter().any(|o| o.attributes == row));
        }
    }

    #[test]
    fn first_record_gaussian_matches_moments() {
        let rows = Tensor::from_vec(4, 2, vec![0.0, 10.0, 2.0, 10.0, 4.0, 10.0, 6.0, 10.0]);
        let g = FirstRecordGaussian::fit(&rows);
        assert_eq!(g.dim(), 2);
        let mut rng = StdRng::seed_from_u64(2);
        let samples: Vec<Vec<f32>> = (0..2000).map(|_| g.sample(&mut rng)).collect();
        let mean0: f32 = samples.iter().map(|s| s[0]).sum::<f32>() / 2000.0;
        let mean1: f32 = samples.iter().map(|s| s[1]).sum::<f32>() / 2000.0;
        assert!((mean0 - 3.0).abs() < 0.3, "mean0 {mean0}");
        assert!((mean1 - 10.0).abs() < 0.1, "mean1 {mean1}");
    }

    #[test]
    fn steps_of_row_chunks_cleanly() {
        let row = vec![1.0, 2.0, 3.0, 4.0, 5.0, 6.0];
        let steps = steps_of_row(&row, 3);
        assert_eq!(steps.len(), 2);
        assert_eq!(steps[1], &[4.0, 5.0, 6.0]);
    }
}
