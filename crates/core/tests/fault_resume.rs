//! Fault enumeration at the training level: every injectable crash point
//! in a checkpointed run either resumes bitwise-identically from the last
//! durable snapshot or restarts fresh to the same final parameters.
//!
//! This extends the in-process bit-exact resume guarantee across process
//! death. A monitored training run persists periodic [`TrainSnapshot`]s
//! (checkpoint + RNG stream position) through the fault-injection
//! backend; for every backend operation we simulate dying there,
//! materialize the surviving filesystem under every loss-policy
//! combination, recover, finish the remaining iterations, and require the
//! final parameters to match an uninterrupted run bit for bit.

use dg_io::{DataLossPolicy, DirLossPolicy, ErrorKind, FaultBackend, FaultPlan, MemBackend};
use doppelganger::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;

const TOTAL_ITERS: usize = 6;
const CKPT_EVERY: usize = 2;
const STREAM_SEED: u64 = 77;

fn setup() -> (Trainer, dg_data::EncodedDataset) {
    let cfg = dg_datasets::SineConfig { num_objects: 8, length: 6, periods: vec![3], noise_sigma: 0.0 };
    let data = dg_datasets::sine::generate(&cfg, &mut StdRng::seed_from_u64(2));
    let mut dg = DgConfig::quick().with_recommended_s(6);
    dg.attr_hidden = 4;
    dg.lstm_hidden = 4;
    dg.head_hidden = 4;
    dg.disc_hidden = 6;
    dg.disc_depth = 2;
    dg.batch_size = 4;
    let model = DoppelGanger::new(&data, dg, &mut StdRng::seed_from_u64(1));
    let enc = model.encode(&data);
    (Trainer::new(model), enc)
}

fn flat_params(tr: &Trainer) -> Vec<u32> {
    tr.model.store.iter().flat_map(|(_, _, t)| t.as_slice().iter().map(|x| x.to_bits())).collect()
}

/// The ground truth: an uninterrupted run on the serializable stream.
fn train_uninterrupted() -> Vec<u32> {
    let (mut tr, enc) = setup();
    let mut rng = TrainRng::seed_from_u64(STREAM_SEED);
    tr.fit(&enc, TOTAL_ITERS, &mut rng, |_| {});
    flat_params(&tr)
}

#[derive(Debug, PartialEq)]
enum RunEnd {
    /// All iterations ran; carries the final parameters.
    Completed(Vec<u32>),
    /// The run stopped on a training error (checkpoint-failure abort).
    Died,
    /// The store could not even be opened (fault at the first operation).
    DeadAtOpen,
}

/// A checkpointed training run against the fault backend, tolerating what
/// the monitor tolerates.
fn train_with_store(fb: &FaultBackend) -> RunEnd {
    let (mut tr, enc) = setup();
    let mut shared = SharedRng::seed_from_u64(STREAM_SEED);
    let store = match CheckpointStore::open(fb.clone(), "ckpts") {
        Ok(s) => s.with_retain(2),
        Err(_) => return RunEnd::DeadAtOpen,
    };
    let mut mon = TrainMonitor::new()
        .with_max_checkpoint_failures(2)
        .with_checkpoint_sink(CKPT_EVERY, checkpoint_sink(store, shared.clone(), 0));
    match tr.fit_monitored(&enc, TOTAL_ITERS, &mut shared, &mut mon, |_| {}) {
        Ok(_) => RunEnd::Completed(flat_params(&tr)),
        Err(_) => RunEnd::Died,
    }
}

/// A checkpointed *resumed* run against the fault backend: recover the
/// newest snapshot (fresh start if none), continue to `TOTAL_ITERS` with
/// the sink offset by the resume base so snapshots stay globally
/// sequenced.
fn resume_with_store(fb: &FaultBackend) -> RunEnd {
    let (_, enc) = setup();
    let store = match CheckpointStore::open(fb.clone(), "ckpts") {
        Ok(s) => s.with_retain(2),
        Err(_) => return RunEnd::DeadAtOpen,
    };
    let (loaded, _skipped) = match store.load_latest() {
        Ok(x) => x,
        Err(_) => return RunEnd::DeadAtOpen,
    };
    let (mut tr, mut shared, base) = match loaded {
        Some(l) => (
            Trainer::resume(l.snapshot.checkpoint),
            SharedRng::new(l.snapshot.rng.expect("the sink always records the stream")),
            l.snapshot.iteration,
        ),
        None => (setup().0, SharedRng::seed_from_u64(STREAM_SEED), 0),
    };
    let mut mon = TrainMonitor::new()
        .with_max_checkpoint_failures(2)
        .with_checkpoint_sink(CKPT_EVERY, checkpoint_sink(store, shared.clone(), base));
    match tr.fit_monitored(&enc, TOTAL_ITERS - base, &mut shared, &mut mon, |_| {}) {
        Ok(_) => RunEnd::Completed(flat_params(&tr)),
        Err(_) => RunEnd::Died,
    }
}

/// Recovers from the post-crash filesystem and trains to the end: resume
/// from the newest valid snapshot if one survived, fresh start otherwise.
/// Either way the final parameters must equal the uninterrupted run's.
fn recover_and_finish(mem: &MemBackend, data: DataLossPolicy, dir: DirLossPolicy) -> Vec<u32> {
    let disk = mem.materialize_crash(data, dir);
    let store = CheckpointStore::open(disk, "ckpts").expect("reopen after crash");
    let (loaded, _skipped) = store.load_latest().expect("recovery scan never errors");
    let (_, enc) = setup();
    match loaded {
        Some(l) => {
            let snap = l.snapshot;
            assert_eq!(snap.iteration as u64, l.seq, "seq is the completed-iteration count");
            let mut tr = Trainer::resume(snap.checkpoint);
            let mut rng = SharedRng::new(snap.rng.expect("the sink always records the stream"));
            tr.fit(&enc, TOTAL_ITERS - snap.iteration, &mut rng, |_| {});
            flat_params(&tr)
        }
        None => {
            let (mut tr, _) = setup();
            let mut rng = TrainRng::seed_from_u64(STREAM_SEED);
            tr.fit(&enc, TOTAL_ITERS, &mut rng, |_| {});
            flat_params(&tr)
        }
    }
}

/// Backend-operation count of a fault-free checkpointed run — the
/// crash-point surface enumerated below.
fn total_ops(expected: &[u32]) -> u64 {
    let fb = FaultBackend::new(MemBackend::new(), FaultPlan::new());
    match train_with_store(&fb) {
        RunEnd::Completed(params) => {
            assert_eq!(params, expected, "monitoring must not change the trajectory");
        }
        other => panic!("fault-free run must complete, got {other:?}"),
    }
    fb.ops_seen()
}

#[test]
fn every_crash_point_resumes_bitwise_identically_or_restarts_cleanly() {
    let expected = train_uninterrupted();
    let n = total_ops(&expected);
    assert!(n > 20, "scenario too small to be interesting: {n} ops");
    for k in 0..n {
        let fb = FaultBackend::new(MemBackend::new(), FaultPlan::new().crash_at(k));
        let _ = train_with_store(&fb);
        assert!(fb.crashed(), "crash_at({k}) never fired");
        for data in DataLossPolicy::ALL {
            for dir in DirLossPolicy::ALL {
                let finished = recover_and_finish(&fb.mem(), data, dir);
                assert_eq!(
                    finished, expected,
                    "crash at op {k} under {data:?}/{dir:?} broke bit-exact recovery"
                );
            }
        }
    }
}

/// Filesystem state of a run interrupted after 4 of the 6 iterations:
/// fault-free checkpointing left durable snapshots at iterations 2 and 4.
fn interrupted_at_four() -> MemBackend {
    let (mut tr, enc) = setup();
    let mut shared = SharedRng::seed_from_u64(STREAM_SEED);
    let mem = MemBackend::new();
    let store = CheckpointStore::open(mem.clone(), "ckpts").unwrap().with_retain(2);
    let mut mon =
        TrainMonitor::new().with_checkpoint_sink(CKPT_EVERY, checkpoint_sink(store, shared.clone(), 0));
    tr.fit_monitored(&enc, 4, &mut shared, &mut mon, |_| {}).expect("interrupted prefix run");
    mem
}

#[test]
fn every_crash_point_in_a_resumed_run_recovers_bitwise() {
    let expected = train_uninterrupted();
    let mem = interrupted_at_four();
    // Keep/Keep materialization is a deep copy of the (fully synced)
    // interrupted state, so each scenario below starts from its own disk.
    let copy =
        |m: &MemBackend| m.materialize_crash(DataLossPolicy::KeepUnsynced, DirLossPolicy::KeepUnsynced);

    // Fault-free resumed pass: completes to the expected parameters and
    // its snapshots continue the *global* sequence — the newest is
    // iteration 6, not a re-numbered iteration 2 overwriting the real
    // early checkpoint with mislabeled newer state.
    let fb0 = FaultBackend::new(copy(&mem), FaultPlan::new());
    match resume_with_store(&fb0) {
        RunEnd::Completed(params) => assert_eq!(params, expected, "fault-free resume diverged"),
        other => panic!("fault-free resume must complete, got {other:?}"),
    }
    let store = CheckpointStore::open(fb0.mem(), "ckpts").unwrap();
    let (loaded, skipped) = store.load_latest().unwrap();
    let loaded = loaded.expect("resumed run checkpointed");
    assert_eq!(loaded.seq, TOTAL_ITERS as u64, "resumed snapshots must continue the global sequence");
    assert_eq!(loaded.snapshot.iteration, TOTAL_ITERS);
    assert!(skipped.is_empty());

    // Corrupt the post-resume newest snapshot: recovery falls back to the
    // pre-crash iteration-4 snapshot and still finishes bit-identically.
    let disk = fb0.mem();
    let bytes = disk.raw(&loaded.path).unwrap();
    disk.plant(&loaded.path, &bytes[..bytes.len() - 4]);
    let finished = recover_and_finish(&disk, DataLossPolicy::KeepUnsynced, DirLossPolicy::KeepUnsynced);
    assert_eq!(finished, expected, "corrupt newest after resume broke fallback recovery");

    // Crash the resumed run at every backend operation; whatever state it
    // leaves, recovery must land on a consistent snapshot and finish
    // bit-identically to the uninterrupted run.
    let n = fb0.ops_seen();
    assert!(n > 10, "resumed scenario too small to be interesting: {n} ops");
    for k in 0..n {
        let fb = FaultBackend::new(copy(&mem), FaultPlan::new().crash_at(k));
        let _ = resume_with_store(&fb);
        assert!(fb.crashed(), "crash_at({k}) never fired");
        for data in DataLossPolicy::ALL {
            for dir in DirLossPolicy::ALL {
                let finished = recover_and_finish(&fb.mem(), data, dir);
                assert_eq!(
                    finished, expected,
                    "crash at op {k} of a resumed run under {data:?}/{dir:?} broke bit-exact recovery"
                );
            }
        }
    }
}

#[test]
fn single_transient_write_error_costs_at_most_one_checkpoint_not_the_run() {
    let expected = train_uninterrupted();
    let n = total_ops(&expected);
    for k in 1..n {
        let fb = FaultBackend::new(MemBackend::new(), FaultPlan::new().fail_at(k, ErrorKind::NoSpace));
        match train_with_store(&fb) {
            RunEnd::Completed(params) => assert_eq!(
                params, expected,
                "ENOSPC at op {k}: a failed checkpoint write must not disturb training"
            ),
            other => panic!("ENOSPC at op {k} must not kill the run (budget is 2), got {other:?}"),
        }
        // Whatever the store holds is still cleanly recoverable.
        let store = CheckpointStore::open(fb.mem(), "ckpts").expect("open");
        let (loaded, _) = store.load_latest().expect("scan");
        let loaded = loaded.expect("at least one checkpoint committed");
        assert!(loaded.snapshot.iteration >= TOTAL_ITERS - CKPT_EVERY);
    }
}
