//! Property-based tests over random DoppelGANger configurations: for any
//! (reasonable) architecture and dataset shape, construction, generation and
//! decoding must produce schema-valid output with the right invariants —
//! no training required.

use dg_data::{Dataset, FieldKind, FieldSpec, Schema, TimeSeriesObject, Value};
use dg_nn::graph::Graph;
use doppelganger::prelude::*;
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;

/// A random small dataset with `cats` attribute categories, `feats`
/// continuous features and series of up to `max_len` records.
fn make_dataset(seed: u64, cats: usize, feats: usize, max_len: usize, n: usize) -> Dataset {
    use rand::Rng;
    let mut rng = StdRng::seed_from_u64(seed);
    let schema = Schema::new(
        vec![FieldSpec::new("class", FieldKind::categorical((0..cats).map(|i| format!("c{i}"))))],
        (0..feats).map(|j| FieldSpec::new(format!("f{j}"), FieldKind::continuous(-10.0, 10.0))).collect(),
        max_len,
    );
    let objects = (0..n)
        .map(|_| {
            let len = rng.gen_range(1..=max_len);
            TimeSeriesObject {
                attributes: vec![Value::Cat(rng.gen_range(0..cats))],
                records: (0..len)
                    .map(|_| (0..feats).map(|_| Value::Cont(rng.gen_range(-10.0..10.0))).collect())
                    .collect(),
            }
        })
        .collect();
    Dataset::new(schema, objects)
}

fn tiny_config(s: usize, auto: bool, aux: bool) -> DgConfig {
    let mut c = DgConfig::quick().with_s(s);
    c.attr_hidden = 8;
    c.attr_depth = 1;
    c.minmax_hidden = 8;
    c.minmax_depth = 1;
    c.lstm_hidden = 8;
    c.head_hidden = 8;
    c.disc_hidden = 10;
    c.disc_depth = 2;
    c.batch_size = 4;
    c.attr_noise_dim = 4;
    c.minmax_noise_dim = 4;
    c.feature_noise_dim = 4;
    if !auto {
        c = c.without_auto_normalization();
    }
    if !aux {
        c = c.without_auxiliary_discriminator();
    }
    c
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn any_config_generates_schema_valid_objects(
        seed in 0u64..1000,
        cats in 2usize..5,
        feats in 1usize..4,
        max_len in 2usize..10,
        s in 1usize..12,
        auto in any::<bool>(),
        aux in any::<bool>(),
    ) {
        let data = make_dataset(seed, cats, feats, max_len, 8);
        let mut rng = StdRng::seed_from_u64(seed ^ 0xF0);
        let model = DoppelGanger::new(&data, tiny_config(s, auto, aux), &mut rng);
        // num_steps covers the padded length.
        prop_assert!(model.num_steps * model.config.feature_batch_size >= max_len);

        let sampler = Sampler::new(model);
        let objs = sampler.generate(6, &mut rng);
        prop_assert_eq!(objs.len(), 6);
        for o in &objs {
            prop_assert!(o.len() <= max_len);
            prop_assert_eq!(o.attributes.len(), 1);
            match o.attributes[0] {
                Value::Cat(c) => prop_assert!(c < cats),
                _ => prop_assert!(false, "attribute must be categorical"),
            }
            for r in &o.records {
                prop_assert_eq!(r.len(), feats);
                for v in r {
                    prop_assert!(v.cont().is_finite());
                }
            }
        }
        // Dataset::new revalidates everything against the schema.
        let _ = sampler.generate_dataset(3, &mut rng);
    }

    #[test]
    fn generated_attribute_blocks_are_simplices(
        seed in 0u64..500,
        cats in 2usize..6,
    ) {
        let data = make_dataset(seed, cats, 1, 6, 8);
        let mut rng = StdRng::seed_from_u64(seed ^ 0xF1);
        let model = DoppelGanger::new(&data, tiny_config(2, true, true), &mut rng);
        let mut g = Graph::new();
        let a = model.gen_attributes(&mut g, 5, &mut rng, true);
        let v = g.value(a);
        prop_assert_eq!(v.shape(), (5, cats));
        for r in 0..5 {
            let sum: f32 = v.row_slice(r).iter().sum();
            prop_assert!((sum - 1.0).abs() < 1e-3);
        }
    }

    #[test]
    fn one_training_step_keeps_everything_finite(
        seed in 0u64..200,
        s in 1usize..6,
        auto in any::<bool>(),
        aux in any::<bool>(),
    ) {
        let data = make_dataset(seed, 3, 2, 6, 8);
        let mut rng = StdRng::seed_from_u64(seed ^ 0xF2);
        let model = DoppelGanger::new(&data, tiny_config(s, auto, aux), &mut rng);
        let encoded = model.encode(&data);
        let mut trainer = Trainer::new(model);
        trainer.fit(&encoded, 2, &mut rng, |m| {
            assert!(m.d_loss.is_finite() && m.g_loss.is_finite() && m.gp.is_finite());
        });
        for (_, _, t) in trainer.model.store.iter() {
            prop_assert!(t.is_finite());
        }
    }

    #[test]
    fn serde_roundtrip_for_random_configs(seed in 0u64..200, aux in any::<bool>()) {
        let data = make_dataset(seed, 2, 1, 5, 6);
        let mut rng = StdRng::seed_from_u64(seed ^ 0xF3);
        let model = DoppelGanger::new(&data, tiny_config(2, true, aux), &mut rng);
        let restored = DoppelGanger::from_json(&model.to_json()).expect("roundtrip");
        let mut r1 = StdRng::seed_from_u64(1);
        let mut r2 = StdRng::seed_from_u64(1);
        let (a1, _, f1) = Sampler::new(model).generate_encoded(3, &mut r1);
        let (a2, _, f2) = Sampler::new(restored).generate_encoded(3, &mut r2);
        prop_assert_eq!(a1, a2);
        prop_assert_eq!(f1, f2);
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(10))]

    /// The serving coalescing contract: N requests fused into one pass are
    /// byte-identical to the same N requests served sequentially, at any
    /// worker thread count — and the contract holds on both sides of a
    /// hot-reload boundary, with an in-flight snapshot pinned to the old
    /// release.
    #[test]
    fn fused_requests_match_sequential_bytes_across_threads_and_reloads(
        seed in 0u64..500,
        sizes in prop::collection::vec((0usize..9, 0u64..100_000), 1..5),
        threads in 1usize..=8,
    ) {
        let data = make_dataset(seed, 3, 2, 6, 8);
        let mut rng = StdRng::seed_from_u64(seed ^ 0xF4);
        let m1 = DoppelGanger::new(&data, tiny_config(2, true, true), &mut rng);
        let m2 = DoppelGanger::new(&data, tiny_config(2, true, true), &mut rng);

        let store = dg_io::ArtifactStore::open(dg_io::MemBackend::new(), "store").unwrap();
        store.put_numbered("m", 1, m1.to_json().as_bytes()).unwrap();
        let (mut sampler, _) = Sampler::from_store(&store, "m").unwrap();

        let reqs: Vec<SampleRequest> = sizes
            .iter()
            .map(|&(n, rseed)| SampleRequest {
                attribute_rows: (0..n).map(|k| vec![Value::Cat(k % 3)]).collect(),
                seed: rseed,
            })
            .collect();
        let bytes = |objs: &Vec<Vec<TimeSeriesObject>>| serde_json::to_string(objs).unwrap();

        let fused1 = sampler.sample_fused_threaded(&reqs, threads);
        let solo1: Vec<_> = reqs.iter().map(|r| sampler.sample_threaded(r, 1)).collect();
        prop_assert_eq!(bytes(&fused1), bytes(&solo1));

        // An in-flight pass clones the handle; the reload must not touch it.
        let snapshot = sampler.clone();
        store.put_numbered("m", 2, m2.to_json().as_bytes()).unwrap();
        let report = sampler.reload(&store, "m").unwrap();
        prop_assert!(report.reloaded);
        prop_assert_eq!(report.seq, 2);
        prop_assert_eq!(bytes(&snapshot.sample_fused_threaded(&reqs, threads)), bytes(&fused1));

        let fused2 = sampler.sample_fused_threaded(&reqs, threads);
        let solo2: Vec<_> = reqs.iter().map(|r| sampler.sample_threaded(r, 1)).collect();
        prop_assert_eq!(bytes(&fused2), bytes(&solo2));
        if reqs.iter().any(|r| r.rows() > 0) {
            prop_assert_ne!(bytes(&fused2), bytes(&fused1), "distinct releases must generate distinct bytes");
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(10))]

    /// The generation-plan cache contract: a sampler replaying recorded
    /// tapes must serve byte-for-byte what a cache-disabled sampler records
    /// fresh — across repeated reuse cycles, worker thread counts, both
    /// precision tiers, and a hot-reload boundary (where cached plans are
    /// re-synced in place instead of re-recorded).
    #[test]
    fn plan_cache_replay_is_bitwise_invisible(
        seed in 0u64..500,
        sizes in prop::collection::vec((1usize..9, 0u64..100_000), 1..4),
        threads in 1usize..=8,
        bf16 in any::<bool>(),
    ) {
        use dg_nn::kernels::Precision;
        let data = make_dataset(seed, 3, 2, 6, 8);
        let mut rng = StdRng::seed_from_u64(seed ^ 0xF5);
        let m1 = DoppelGanger::new(&data, tiny_config(2, true, true), &mut rng);
        let m2 = DoppelGanger::new(&data, tiny_config(2, true, true), &mut rng);
        let precision = if bf16 { Precision::Bf16 } else { Precision::F32 };

        let store = dg_io::ArtifactStore::open(dg_io::MemBackend::new(), "store").unwrap();
        store.put_numbered("m", 1, m1.to_json().as_bytes()).unwrap();
        let (cached, _) = Sampler::from_store(&store, "m").unwrap();
        let mut cached = cached.with_precision(precision);
        cached.set_plan_cache_enabled(true);
        let (plain, _) = Sampler::from_store(&store, "m").unwrap();
        let mut plain = plain.with_precision(precision);
        plain.set_plan_cache_enabled(false);

        let reqs: Vec<SampleRequest> = sizes
            .iter()
            .map(|&(n, rseed)| SampleRequest {
                attribute_rows: (0..n).map(|k| vec![Value::Cat(k % 3)]).collect(),
                seed: rseed,
            })
            .collect();
        let bytes = |objs: &Vec<Vec<TimeSeriesObject>>| serde_json::to_string(objs).unwrap();

        // Repeated reuse cycles: the first pass of each chunk shape records
        // a plan, every later pass replays it.
        for round in 0..3u64 {
            let shifted: Vec<SampleRequest> =
                reqs.iter().map(|r| SampleRequest { seed: r.seed ^ round, ..r.clone() }).collect();
            prop_assert_eq!(
                bytes(&cached.sample_fused_threaded(&shifted, threads)),
                bytes(&plain.sample_fused_threaded(&shifted, threads)),
                "cached replay diverged on round {}", round
            );
        }
        let (hits, misses) = cached.plan_stats();
        prop_assert!(hits > 0, "repeat passes must replay ({} hits / {} misses)", hits, misses);
        prop_assert_eq!(plain.plan_stats(), (0, 0));

        // Hot-reload boundary: plans re-synced to the new release must
        // serve exactly what a fresh record of the new weights serves.
        store.put_numbered("m", 2, m2.to_json().as_bytes()).unwrap();
        prop_assert!(cached.reload(&store, "m").unwrap().reloaded);
        prop_assert!(plain.reload(&store, "m").unwrap().reloaded);
        prop_assert_eq!(
            bytes(&cached.sample_fused_threaded(&reqs, threads)),
            bytes(&plain.sample_fused_threaded(&reqs, threads))
        );
    }
}
