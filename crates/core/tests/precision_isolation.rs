//! Precision isolation at the training level: the bf16 inference tier is
//! strictly generation-only. A process that forces `DG_PRECISION=bf16` in
//! its environment and runs bf16 generation passes concurrently with
//! training must leave `fit` / `fit_monitored` bitwise identical to a
//! clean f32 run — the precision knob lives on the [`Sampler`] (and the
//! serving CLI that configures it), never on the trainer.
//!
//! The flip side of the contract is also pinned here: a bf16 sampler's
//! same-seed output really does differ from f32 (the switch reaches the
//! kernels), stays within the paper's distribution-level fidelity gate,
//! and remains deterministic across worker counts and across the fused
//! multi-request path.

use dg_data::Value;
use dg_metrics::distribution_deltas;
use doppelganger::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;

const TOTAL_ITERS: usize = 6;
const STREAM_SEED: u64 = 77;

/// A small but non-degenerate model on the two-class sine smoke dataset.
fn setup(hidden: usize) -> (DoppelGanger, dg_data::EncodedDataset) {
    let cfg = dg_datasets::SineConfig { num_objects: 24, length: 8, periods: vec![3, 5], noise_sigma: 0.05 };
    let data = dg_datasets::sine::generate(&cfg, &mut StdRng::seed_from_u64(2));
    let mut dg = DgConfig::quick().with_recommended_s(8);
    dg.attr_hidden = hidden;
    dg.lstm_hidden = hidden;
    dg.head_hidden = hidden;
    dg.disc_hidden = hidden;
    dg.disc_depth = 2;
    dg.batch_size = 8;
    let model = DoppelGanger::new(&data, dg, &mut StdRng::seed_from_u64(1));
    let enc = model.encode(&data);
    (model, enc)
}

fn flat_params(tr: &Trainer) -> Vec<u32> {
    tr.model.store.iter().flat_map(|(_, _, t)| t.as_slice().iter().map(|x| x.to_bits())).collect()
}

/// A schema-valid conditioned request against the two-class sine schema.
fn req(rows: usize, seed: u64) -> SampleRequest {
    SampleRequest { attribute_rows: (0..rows).map(|k| vec![Value::Cat(k % 2)]).collect(), seed }
}

#[test]
fn forced_bf16_environment_never_touches_training() {
    // The environment knob the serving CLI honors. Nothing on the training
    // path may read it — this test fails if anyone ever wires it into the
    // trainer, an eval pass, or checkpointing.
    std::env::set_var("DG_PRECISION", "bf16");

    // Ground truth: a plain f32 fit.
    let (model, enc) = setup(8);
    let mut baseline = Trainer::new(model);
    baseline.fit(&enc, TOTAL_ITERS, &mut TrainRng::seed_from_u64(STREAM_SEED), |_| {});
    let expected = flat_params(&baseline);

    // The adversarial run: monitored training while a bf16 sampler built
    // from the same initial weights generates after every iteration, in
    // the same process, with DG_PRECISION=bf16 exported.
    let (model, enc) = setup(8);
    let sampler = Sampler::new(model.clone()).with_precision(Precision::Bf16);
    assert_eq!(sampler.precision(), Precision::Bf16);
    let mut tr = Trainer::new(model);
    let mut shared = SharedRng::seed_from_u64(STREAM_SEED);
    let mut mon = TrainMonitor::new();
    let mut gen_rng = StdRng::seed_from_u64(9);
    tr.fit_monitored(&enc, TOTAL_ITERS, &mut shared, &mut mon, |_| {
        // Reduced-precision generation interleaved with the optimizer steps.
        let objs = sampler.generate(4, &mut gen_rng);
        assert_eq!(objs.len(), 4);
    })
    .expect("monitored run completes");

    assert_eq!(
        flat_params(&tr),
        expected,
        "bf16 generation (or DG_PRECISION in the environment) leaked into training"
    );
}

#[test]
fn bf16_generation_differs_from_f32_but_passes_the_distribution_gate() {
    let (model, _) = setup(16);
    let sampler = Sampler::new(model);
    let bf16 = sampler.clone().with_precision(Precision::Bf16);

    let ds_f32 = sampler.generate_dataset(96, &mut StdRng::seed_from_u64(11));
    let ds_bf16 = bf16.generate_dataset(96, &mut StdRng::seed_from_u64(11));

    // The switch must reach the kernels: same-seed outputs are not
    // sample-identical...
    let differs = ds_f32.objects.iter().zip(&ds_bf16.objects).any(|(a, b)| a != b);
    assert!(differs, "bf16 sampler output is identical to f32 — the precision switch is dead");

    // ...but the tier is validated by distribution, the same standard the
    // paper applies to generated-vs-real data. Thresholds match the
    // serving bench / CI fidelity gate.
    let report = distribution_deltas(&ds_f32, &ds_bf16, 6);
    assert!(report.within(0.01, 0.05, 0.05), "bf16 drifted past the distribution gate: {report:?}");
}

#[test]
fn bf16_serving_is_deterministic_across_threads_and_fusing() {
    let (model, _) = setup(8);
    let sampler = Sampler::new(model).with_precision(Precision::Bf16);

    let reqs = [req(5, 3), req(1, 4), req(8, 5)];

    // Per-tier determinism survives the precision switch: every worker
    // count serves bitwise-identical objects.
    let serial: Vec<_> = reqs.iter().map(|r| sampler.sample_threaded(r, 1)).collect();
    for threads in [2, 4, 8] {
        for (r, want) in reqs.iter().zip(&serial) {
            assert_eq!(
                &sampler.sample_threaded(r, threads),
                want,
                "bf16 sample at {threads} workers diverged from serial"
            );
        }
    }

    // The fused multi-request path inherits the same contract at bf16.
    for threads in [1, 2, 8] {
        let fused = sampler.sample_fused_threaded(&reqs, threads);
        assert_eq!(fused, serial, "fused bf16 at {threads} workers diverged from sequential");
    }
}
