//! Serving fault enumeration: the engine-level half of the overload-safety
//! contract (ISSUE 9, the serving analogue of `fault_resume.rs`).
//!
//! For every injectable serving fault point — a panic inside fused
//! generation pass *k*, an `ENOSPC`-style failure of reload poll *k*, a
//! stalled pass backing the queue up into admission control, expired
//! client deadlines riding a wedged queue — every submitted request must
//! terminate with either a correct response (byte-identical to a direct
//! sampler call against the serving release) or a structured
//! [`ServeError`], within a bounded wait. No hangs, no dead batcher, no
//! poisoned-mutex cascade, and health transitions (`ok` → `degraded` →
//! `ok`, `draining` terminal) must track reload outcomes exactly.

use dg_io::{ArtifactStore, MemBackend};
use doppelganger::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::sync::Arc;
use std::time::{Duration, Instant};

fn tiny_model(seed: u64) -> DoppelGanger {
    let mut rng = StdRng::seed_from_u64(seed);
    let cfg = dg_datasets::SineConfig { num_objects: 12, length: 10, periods: vec![3, 5], noise_sigma: 0.05 };
    let data = dg_datasets::sine::generate(&cfg, &mut rng);
    let mut dg_cfg = DgConfig::quick().with_recommended_s(10);
    dg_cfg.attr_hidden = 6;
    dg_cfg.lstm_hidden = 6;
    dg_cfg.head_hidden = 6;
    dg_cfg.batch_size = 4;
    DoppelGanger::new(&data, dg_cfg, &mut rng)
}

fn req(n: usize, seed: u64) -> SampleRequest {
    SampleRequest { attribute_rows: (0..n).map(|k| vec![dg_data::Value::Cat(k % 2)]).collect(), seed }
}

fn bytes(objects: &[dg_data::TimeSeriesObject]) -> String {
    serde_json::to_string(objects).unwrap()
}

/// Panic sweep: for every pass index k in a short horizon, exactly the
/// requests riding pass k fail with `PassPanicked`, every other request
/// stays byte-identical to a direct sampler call, and the batcher
/// survives to serve the full sequence.
#[test]
fn pass_panic_sweep_isolates_exactly_the_faulted_pass() {
    const HORIZON: u64 = 4;
    let model = tiny_model(31);
    let ground_truth = Sampler::new(model.clone());
    for k in 0..HORIZON {
        let cfg = ServeConfig {
            // One request per pass so pass index == submission index.
            max_fused_requests: 1,
            faults: ServeFaultPlan { panic_on_pass: Some(k), ..ServeFaultPlan::default() },
            ..ServeConfig::default()
        };
        let engine = BatchEngine::new(Sampler::new(model.clone()), cfg);
        for i in 0..HORIZON {
            let r = req(2, 100 + i);
            match engine.sample_blocking(r.clone()) {
                Ok(resp) => {
                    assert_ne!(i, k, "the faulted pass cannot produce a response");
                    assert_eq!(
                        bytes(&resp.objects),
                        bytes(&ground_truth.sample_threaded(&r, 1)),
                        "post-fault responses must stay byte-identical (fault pass {k}, request {i})"
                    );
                }
                Err(ServeError::PassPanicked(msg)) => {
                    assert_eq!(i, k, "only pass {k} is faulted, but request {i} panicked: {msg}");
                    assert!(msg.contains("injected serving fault"), "{msg}");
                }
                Err(other) => panic!("fault pass {k}, request {i}: unexpected error {other:?}"),
            }
        }
        let stats = engine.stats();
        assert_eq!(stats.pass_panics, 1, "fault pass {k}");
        assert_eq!(stats.requests, HORIZON - 1, "fault pass {k}");
        assert_eq!(stats.health, "ok", "an isolated panic is not a health transition");
    }
}

/// A concurrent storm against a panicking first pass: every client
/// terminates within its bounded wait with a response or a structured
/// error, and the engine keeps serving afterwards.
#[test]
fn concurrent_clients_survive_a_panicked_pass_without_hanging() {
    let model = tiny_model(32);
    let cfg = ServeConfig {
        faults: ServeFaultPlan { panic_on_pass: Some(0), ..ServeFaultPlan::default() },
        ..ServeConfig::default()
    };
    let engine = Arc::new(BatchEngine::new(Sampler::new(model.clone()), cfg));
    let started = Instant::now();
    let handles: Vec<_> = (0..8u64)
        .map(|i| {
            let engine = Arc::clone(&engine);
            std::thread::spawn(move || engine.sample_with_deadline(req(2, i), Some(Duration::from_secs(10))))
        })
        .collect();
    let mut ok = 0u64;
    let mut panicked = 0u64;
    for h in handles {
        match h.join().unwrap() {
            Ok(_) => ok += 1,
            Err(ServeError::PassPanicked(_)) => panicked += 1,
            Err(other) => panic!("unexpected error under panic fault: {other:?}"),
        }
    }
    assert!(started.elapsed() < Duration::from_secs(10), "no client may hang");
    assert!(panicked >= 1, "pass 0 panicked; someone rode it");
    assert_eq!(ok + panicked, 8, "every client terminates exactly once");
    // The batcher survived the storm.
    let r = req(3, 999);
    let after = engine.sample_blocking(r.clone()).unwrap();
    assert_eq!(bytes(&after.objects), bytes(&Sampler::new(model).sample_threaded(&r, 1)));
}

/// Reload blip: one failed poll degrades health without unloading the
/// serving release; the next successful poll recovers health and installs
/// the newer release atomically.
#[test]
fn reload_failure_degrades_health_and_recovery_restores_it() {
    let m1 = tiny_model(33);
    let m2 = tiny_model(34);
    let store = ArtifactStore::open(MemBackend::new(), "store").unwrap();
    store.put_numbered("m", 1, m1.to_json().as_bytes()).unwrap();
    let (sampler, load) = Sampler::from_store(&store, "m").unwrap();
    assert_eq!(load.seq, 1);
    let ground_m1 = sampler.clone();
    let cfg = ServeConfig {
        faults: ServeFaultPlan { reload_fail_on_poll: Some(1), ..ServeFaultPlan::default() },
        ..ServeConfig::default()
    };
    let engine = BatchEngine::new(sampler, cfg);

    // Poll 0: clean, nothing new to load.
    assert!(engine.reload(&store, "m").unwrap().seq == 1);
    assert_eq!(engine.health(), ServeHealth::Ok);

    // Poll 1: injected ENOSPC. Health degrades; the old release serves on.
    store.put_numbered("m", 2, m2.to_json().as_bytes()).unwrap();
    let err = engine.reload(&store, "m").unwrap_err();
    assert!(err.to_string().contains("injected serving fault"), "{err}");
    assert_eq!(engine.health(), ServeHealth::Degraded);
    assert_eq!(engine.consecutive_reload_failures(), 1);
    assert_eq!(engine.loaded_seq(), Some(1), "a failed poll must not unload the serving release");
    let r = req(3, 7);
    let during = engine.sample_blocking(r.clone()).unwrap();
    assert_eq!(during.seq, Some(1));
    assert_eq!(bytes(&during.objects), bytes(&ground_m1.sample_threaded(&r, 1)));

    // Poll 2: clean again — recovery installs seq 2 and restores health.
    let report = engine.reload(&store, "m").unwrap();
    assert!(report.reloaded);
    assert_eq!(report.seq, 2);
    assert_eq!(engine.health(), ServeHealth::Ok);
    assert_eq!(engine.consecutive_reload_failures(), 0);
    assert_eq!(engine.stats().reloads, 1);
    let (ground_m2, _) = Sampler::from_store(&store, "m").unwrap();
    let after = engine.sample_blocking(r.clone()).unwrap();
    assert_eq!(after.seq, Some(2));
    assert_eq!(bytes(&after.objects), bytes(&ground_m2.sample_threaded(&r, 1)));
}

/// Sustained reload failure: consecutive-failure count climbs (the front
/// end's backoff input), health stays degraded, serving continues — and a
/// draining engine never reports anything but `draining` again.
#[test]
fn sustained_reload_failure_counts_up_and_drain_stays_terminal() {
    let m1 = tiny_model(35);
    let store = ArtifactStore::open(MemBackend::new(), "store").unwrap();
    store.put_numbered("m", 1, m1.to_json().as_bytes()).unwrap();
    let (sampler, _) = Sampler::from_store(&store, "m").unwrap();
    let cfg = ServeConfig {
        faults: ServeFaultPlan { reload_fail_from: Some(0), ..ServeFaultPlan::default() },
        ..ServeConfig::default()
    };
    let engine = BatchEngine::new(sampler, cfg);
    for expected in 1..=3u64 {
        assert!(engine.reload(&store, "m").is_err());
        assert_eq!(engine.consecutive_reload_failures(), expected);
        assert_eq!(engine.health(), ServeHealth::Degraded);
    }
    assert_eq!(engine.sample_blocking(req(1, 1)).unwrap().seq, Some(1));
    engine.begin_drain();
    assert_eq!(engine.health(), ServeHealth::Draining);
    // Further reload outcomes (failures here) must not leave Draining.
    assert!(engine.reload(&store, "m").is_err());
    assert_eq!(engine.health(), ServeHealth::Draining, "draining is terminal");
}

/// Overload storm against a wedged pass: every submission terminates
/// immediately with admission (`Ok`) or `Overloaded` — never a block —
/// and everything admitted completes once the stall clears.
#[test]
fn overload_storm_sheds_cleanly_and_admitted_work_completes() {
    let cfg = ServeConfig {
        queue_depth: 2,
        max_fused_requests: 1,
        faults: ServeFaultPlan { stall_on_pass: Some(0), stall_ms: 300, ..ServeFaultPlan::default() },
        ..ServeConfig::default()
    };
    let engine = Arc::new(BatchEngine::new(Sampler::new(tiny_model(36)), cfg));
    let wedge = engine.try_submit(req(1, 0), None).unwrap();
    std::thread::sleep(Duration::from_millis(50));
    let admission = Instant::now();
    let mut accepted = Vec::new();
    let mut shed = 0u64;
    for i in 0..16u64 {
        match engine.try_submit(req(1, 10 + i), None) {
            Ok(rx) => accepted.push(rx),
            Err(ServeError::Overloaded) => shed += 1,
            Err(other) => panic!("unexpected admission error: {other:?}"),
        }
    }
    assert!(
        admission.elapsed() < Duration::from_millis(250),
        "admission control must answer during the stall, not after it"
    );
    assert!(shed > 0, "a depth-2 queue cannot absorb 16 submissions");
    assert_eq!(engine.stats().shed, shed);
    let deadline = Duration::from_secs(10);
    assert!(wedge.recv_timeout(deadline).unwrap().is_ok());
    for rx in accepted {
        assert!(rx.recv_timeout(deadline).unwrap().is_ok(), "admitted work must complete");
    }
}

/// Expired and live deadlines mixed in one dequeue: the expired ones are
/// dropped without a pass slot, the live ones are served byte-identically.
#[test]
fn mixed_deadlines_drop_expired_and_serve_live_requests() {
    let model = tiny_model(37);
    let cfg = ServeConfig {
        faults: ServeFaultPlan { stall_on_pass: Some(0), stall_ms: 250, ..ServeFaultPlan::default() },
        ..ServeConfig::default()
    };
    let engine = BatchEngine::new(Sampler::new(model.clone()), cfg);
    let wedge = engine.try_submit(req(1, 0), None).unwrap();
    std::thread::sleep(Duration::from_millis(50));
    // Three requests that cannot survive the stall, two that can.
    let doomed: Vec<_> = (0..3u64)
        .map(|i| engine.try_submit(req(1, 10 + i), Some(Duration::from_millis(1))).unwrap())
        .collect();
    let live: Vec<_> = (0..2u64).map(|i| (i, engine.try_submit(req(2, 20 + i), None).unwrap())).collect();
    let deadline = Duration::from_secs(10);
    assert!(wedge.recv_timeout(deadline).unwrap().is_ok());
    for rx in doomed {
        assert_eq!(rx.recv_timeout(deadline).unwrap().unwrap_err(), ServeError::DeadlineExceeded);
    }
    let ground_truth = Sampler::new(model);
    for (i, rx) in live {
        let resp = rx.recv_timeout(deadline).unwrap().unwrap();
        assert_eq!(bytes(&resp.objects), bytes(&ground_truth.sample_threaded(&req(2, 20 + i), 1)));
    }
    let stats = engine.stats();
    assert_eq!(stats.deadline_expired, 3);
    assert_eq!(stats.requests, 3, "wedge + two live requests; expired ones never generate");
}

/// Seeded sweep: a handful of seeded plans (panic pass + reload-fail poll
/// drawn deterministically) each leave the engine fully functional — every
/// request and poll terminates with a response or structured error, and
/// the engine serves byte-identical output afterwards.
#[test]
fn seeded_fault_plans_always_leave_a_serving_engine_behind() {
    const HORIZON: u64 = 4;
    let model = tiny_model(38);
    let store = ArtifactStore::open(MemBackend::new(), "store").unwrap();
    store.put_numbered("m", 1, model.to_json().as_bytes()).unwrap();
    for seed in 0..6u64 {
        let plan = ServeFaultPlan::seeded(seed, HORIZON);
        assert_eq!(plan, ServeFaultPlan::seeded(seed, HORIZON), "plans must be deterministic");
        let (sampler, _) = Sampler::from_store(&store, "m").unwrap();
        let ground_truth = sampler.clone();
        let cfg = ServeConfig { max_fused_requests: 1, faults: plan, ..ServeConfig::default() };
        let engine = BatchEngine::new(sampler, cfg);
        let mut panics = 0u64;
        for i in 0..HORIZON {
            match engine.sample_blocking(req(1, i)) {
                Ok(_) => {}
                Err(ServeError::PassPanicked(_)) => panics += 1,
                Err(other) => panic!("seed {seed}, request {i}: unexpected error {other:?}"),
            }
            // Interleave reload polls; they either succeed or fail with the
            // injected error, never hang or unload the release.
            match engine.reload(&store, "m") {
                Ok(report) => assert_eq!(report.seq, 1),
                Err(e) => assert!(e.to_string().contains("injected serving fault"), "seed {seed}: {e}"),
            }
            assert_eq!(engine.loaded_seq(), Some(1));
        }
        assert_eq!(panics, 1, "seed {seed}: exactly the planned pass panics");
        let r = req(3, 555);
        let after = engine.sample_blocking(r.clone()).unwrap();
        assert_eq!(
            bytes(&after.objects),
            bytes(&ground_truth.sample_threaded(&r, 1)),
            "seed {seed}: post-sweep responses must be byte-identical"
        );
    }
}
