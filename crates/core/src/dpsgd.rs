//! DP-SGD configuration for differentially-private discriminator training.
//!
//! Following Abadi et al. (2016) as applied to GAN discriminators in the
//! paper's §5.3.1: per-sample gradients are clipped to an L2 norm `C` and
//! Gaussian noise with standard deviation `σ·C` is added to the summed
//! gradient. Privacy accounting (the `(σ, q, T) → ε` conversion) lives in
//! the `dg-privacy` crate's Rényi-DP accountant.

use serde::{Deserialize, Serialize};

/// DP-SGD noise/clipping parameters.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct DpConfig {
    /// Per-sample gradient clipping norm `C`.
    pub clip_norm: f32,
    /// Noise multiplier `σ` (noise stddev is `σ·C`).
    pub noise_multiplier: f32,
}

impl DpConfig {
    /// A moderate default: `C = 1`, `σ = 1.1` (roughly the TF-Privacy
    /// tutorial setting the paper used).
    pub fn moderate() -> Self {
        DpConfig { clip_norm: 1.0, noise_multiplier: 1.1 }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn serde_roundtrip() {
        let c = DpConfig::moderate();
        let json = serde_json::to_string(&c).unwrap();
        let back: DpConfig = serde_json::from_str(&json).unwrap();
        assert_eq!(c, back);
    }
}
