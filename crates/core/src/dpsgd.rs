//! DP-SGD configuration for differentially-private discriminator training.
//!
//! Following Abadi et al. (2016) as applied to GAN discriminators in the
//! paper's §5.3.1: per-sample gradients are clipped to an L2 norm `C` and
//! Gaussian noise with standard deviation `σ·C` is added to the summed
//! gradient. Privacy accounting (the `(σ, q, T) → ε` conversion) lives in
//! the `dg-privacy` crate's Rényi-DP accountant.

use rand::Rng;
use serde::{Deserialize, Serialize};

/// DP-SGD noise/clipping parameters.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct DpConfig {
    /// Per-sample gradient clipping norm `C`.
    pub clip_norm: f32,
    /// Noise multiplier `σ` (noise stddev is `σ·C`).
    pub noise_multiplier: f32,
}

impl DpConfig {
    /// A moderate default: `C = 1`, `σ = 1.1` (roughly the TF-Privacy
    /// tutorial setting the paper used).
    pub fn moderate() -> Self {
        DpConfig { clip_norm: 1.0, noise_multiplier: 1.1 }
    }
}

/// Draws one RNG seed per sample from the step RNG, in sample order.
///
/// Splitting the seeds *before* fanning per-sample work out across threads
/// is what makes the parallel DP-SGD step reproducible: each sample's
/// gradient-penalty draws come from its own `StdRng` built from `seeds[k]`,
/// so neither thread count nor scheduling order can change any sample's
/// randomness (and the step RNG advances by exactly `count` draws no matter
/// how the work is executed).
pub fn split_seeds<R: Rng + ?Sized>(rng: &mut R, count: usize) -> Vec<u64> {
    (0..count).map(|_| rng.gen::<u64>()).collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn serde_roundtrip() {
        let c = DpConfig::moderate();
        let json = serde_json::to_string(&c).unwrap();
        let back: DpConfig = serde_json::from_str(&json).unwrap();
        assert_eq!(c, back);
    }

    #[test]
    fn split_seeds_is_deterministic_and_distinct() {
        let mut a = StdRng::seed_from_u64(11);
        let mut b = StdRng::seed_from_u64(11);
        let sa = split_seeds(&mut a, 16);
        let sb = split_seeds(&mut b, 16);
        assert_eq!(sa, sb);
        let unique: std::collections::HashSet<_> = sa.iter().collect();
        assert_eq!(unique.len(), sa.len(), "per-sample seeds should not collide");
    }
}
