//! In-process serving engine: a bounded request queue draining into fused
//! generation passes, with atomic hot-reload and request/batch/latency
//! counters.
//!
//! [`BatchEngine`] sits between a transport (the `dg serve` socket/stdio
//! front end, the serving bench) and a [`Sampler`]:
//!
//! * callers submit [`SampleRequest`]s into a bounded queue
//!   (backpressure: a full queue blocks the submitter, it never grows
//!   unbounded);
//! * a single batcher thread drains whatever is queued — up to
//!   [`ServeConfig::max_fused_requests`] requests /
//!   [`ServeConfig::max_fused_rows`] rows, optionally holding the pass
//!   open for [`ServeConfig::max_wait_us`] microseconds to gather
//!   stragglers — and serves them in **one** fused
//!   [`Sampler::sample_fused`] pass, so concurrent callers share graph
//!   recordings and wide GEMMs instead of queuing per-request passes;
//! * request latencies feed a bounded [`LatencyRing`] (window size
//!   [`ServeConfig::latency_window`]), so [`ServeStats`] percentiles are
//!   sliding-window estimates and engine memory stays constant over
//!   arbitrarily long runs;
//! * generation can run at a reduced inference precision
//!   ([`ServeConfig::precision`], echoed in every [`SampleResponse`] and
//!   [`ServeStats`] snapshot) — the serving-only bf16 tier of
//!   `dg_nn::kernels`;
//! * the batcher snapshots the model handle **once per fused pass**:
//!   [`BatchEngine::reload`] swaps the engine's [`Sampler`] atomically,
//!   in-flight passes finish against the release they started with, and
//!   every later pass picks up the new one — the hot-reload atomicity
//!   contract `dg serve` exposes.
//!
//! Fusion never changes bytes: each request's output depends only on its
//! own `(attribute_rows, seed)` and the loaded release (see the
//! determinism notes in [`crate::sampler`]), so a request observes the
//! same series whether it ran alone or coalesced with strangers.

use crate::model::DoppelGanger;
use crate::sampler::{ReloadReport, SampleRequest, Sampler, SamplerError};
use dg_data::TimeSeriesObject;
use dg_io::{ArtifactStore, Backend};
use dg_nn::kernels::Precision;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::mpsc::{self, Receiver, SyncSender};
use std::sync::{Arc, Mutex};
use std::time::{Duration, Instant};

/// Tuning knobs for a [`BatchEngine`].
#[derive(Debug, Clone)]
pub struct ServeConfig {
    /// Maximum requests coalesced into one fused pass. `1` disables
    /// coalescing entirely (the unbatched reference mode the serving
    /// bench compares against).
    pub max_fused_requests: usize,
    /// Maximum total rows (synthetic objects) per fused pass.
    pub max_fused_rows: usize,
    /// Bound of the request queue; submitters block when it is full.
    pub queue_depth: usize,
    /// How long (microseconds) the batcher keeps gathering once at least
    /// one request is in hand, waiting for more requests to fuse. `0`
    /// (the default) preserves the original behavior: drain whatever is
    /// already queued and go — minimum latency, but under a steady trickle
    /// of single requests every pass serves exactly one. A small window
    /// (~hundreds of µs) trades that much added latency for wider fused
    /// passes and higher throughput.
    pub max_wait_us: u64,
    /// How many of the most recent request latencies the engine retains
    /// for its [`ServeStats`] percentiles. Bounds the engine's memory over
    /// arbitrarily long runs; see [`LatencyRing`].
    pub latency_window: usize,
    /// Numeric precision generation passes run at. [`Precision::Bf16`]
    /// selects the reduced-precision inference tier — faster, validated by
    /// distribution rather than bitwise (see `DESIGN.md` §14). Only
    /// serving reads this; training never constructs a [`BatchEngine`].
    pub precision: Precision,
}

impl Default for ServeConfig {
    fn default() -> Self {
        ServeConfig {
            max_fused_requests: 64,
            max_fused_rows: 4096,
            queue_depth: 256,
            max_wait_us: 0,
            latency_window: 4096,
            precision: Precision::F32,
        }
    }
}

/// One served response.
#[derive(Debug, Clone)]
pub struct SampleResponse {
    /// Artifact sequence number of the release that generated this
    /// response, when the model came from a store.
    pub seq: Option<u64>,
    /// The generated synthetic objects, one per requested attribute row.
    pub objects: Vec<TimeSeriesObject>,
    /// Queue + generation latency observed by the engine, milliseconds.
    pub latency_ms: f64,
    /// Numeric precision the generation pass ran at.
    pub precision: Precision,
}

/// A point-in-time snapshot of the engine's counters.
///
/// The latency percentiles are **nearest-rank estimates over a bounded
/// sliding window** of the most recent [`ServeStats::latency_window`]
/// finite observations (see [`LatencyRing`]) — not over process lifetime.
/// A long-running server therefore reports *recent* tail latency, and the
/// engine's memory stays bounded no matter how many requests it serves.
#[derive(Debug, Clone, serde::Serialize)]
pub struct ServeStats {
    /// Requests served (responses delivered).
    pub requests: u64,
    /// Fused passes executed.
    pub batches: u64,
    /// Synthetic objects generated.
    pub samples: u64,
    /// Requests rejected at validation.
    pub rejected: u64,
    /// Hot-reloads that installed a different release.
    pub reloads: u64,
    /// Median request latency over the retained window, milliseconds.
    pub p50_ms: f64,
    /// 99th-percentile request latency over the retained window,
    /// milliseconds.
    pub p99_ms: f64,
    /// Numeric precision generation passes run at (`"f32"` / `"bf16"`).
    pub precision: String,
    /// Capacity of the latency window the percentiles estimate over.
    pub latency_window: usize,
    /// Latency observations currently retained (≤ `latency_window`).
    pub latency_samples: usize,
}

struct Job {
    req: SampleRequest,
    reply: mpsc::Sender<SampleResponse>,
    enqueued: Instant,
}

/// A bounded ring of the most recent latency observations.
///
/// The serving loop originally pushed every request latency into an
/// unbounded `Vec`, which grows without limit over a long-running
/// process (~8 bytes per request, forever). The ring instead retains the
/// last `capacity` **finite** observations — non-finite measurements are
/// dropped at insertion, so a single poisoned value can never reach the
/// percentile sort — overwriting the oldest entry once full. Percentiles
/// computed from [`LatencyRing::sorted`] are therefore nearest-rank
/// estimates over a sliding window of the most recent requests.
#[derive(Debug, Clone)]
pub struct LatencyRing {
    buf: Vec<f64>,
    head: usize,
    cap: usize,
}

impl LatencyRing {
    /// An empty ring retaining at most `capacity` observations (min 1).
    pub fn new(capacity: usize) -> Self {
        LatencyRing { buf: Vec::new(), head: 0, cap: capacity.max(1) }
    }

    /// Records one observation. Non-finite values are silently dropped.
    pub fn push(&mut self, v: f64) {
        if !v.is_finite() {
            return;
        }
        if self.buf.len() < self.cap {
            self.buf.push(v);
        } else {
            self.buf[self.head] = v;
            self.head = (self.head + 1) % self.cap;
        }
    }

    /// Observations currently retained (≤ capacity).
    pub fn len(&self) -> usize {
        self.buf.len()
    }

    /// Whether the ring retains no observations.
    pub fn is_empty(&self) -> bool {
        self.buf.is_empty()
    }

    /// The retention bound.
    pub fn capacity(&self) -> usize {
        self.cap
    }

    /// The retained observations, ascending (a sorted copy; `total_cmp`
    /// is a total order, so this cannot panic regardless of input).
    pub fn sorted(&self) -> Vec<f64> {
        let mut v = self.buf.clone();
        v.sort_by(f64::total_cmp);
        v
    }
}

struct Inner {
    sampler: Mutex<Sampler>,
    requests: AtomicU64,
    batches: AtomicU64,
    samples: AtomicU64,
    rejected: AtomicU64,
    reloads: AtomicU64,
    latencies: Mutex<LatencyRing>,
}

/// The request-coalescing serving engine. See the module docs for the
/// queue/fusion/hot-reload contract.
pub struct BatchEngine {
    tx: Mutex<Option<SyncSender<Job>>>,
    inner: Arc<Inner>,
    worker: Mutex<Option<std::thread::JoinHandle<()>>>,
}

impl BatchEngine {
    /// Starts an engine (and its batcher thread) over `sampler`. The
    /// engine imposes [`ServeConfig::precision`] on the sampler — the one
    /// place the reduced-precision tier can be switched on.
    pub fn new(mut sampler: Sampler, config: ServeConfig) -> Self {
        sampler.set_precision(config.precision);
        let inner = Arc::new(Inner {
            sampler: Mutex::new(sampler),
            requests: AtomicU64::new(0),
            batches: AtomicU64::new(0),
            samples: AtomicU64::new(0),
            rejected: AtomicU64::new(0),
            reloads: AtomicU64::new(0),
            latencies: Mutex::new(LatencyRing::new(config.latency_window)),
        });
        let (tx, rx) = mpsc::sync_channel::<Job>(config.queue_depth.max(1));
        let worker = {
            let inner = Arc::clone(&inner);
            let max_reqs = config.max_fused_requests.max(1);
            let max_rows = config.max_fused_rows.max(1);
            let max_wait = Duration::from_micros(config.max_wait_us);
            std::thread::spawn(move || batcher_loop(rx, inner, max_reqs, max_rows, max_wait))
        };
        BatchEngine { tx: Mutex::new(Some(tx)), inner, worker: Mutex::new(Some(worker)) }
    }

    /// The precision generation passes run at.
    pub fn precision(&self) -> Precision {
        self.inner.sampler.lock().unwrap().precision()
    }

    /// Validates and enqueues `req`, returning the channel its response
    /// will arrive on. Blocks while the queue is full (backpressure).
    pub fn submit(&self, req: SampleRequest) -> Result<Receiver<SampleResponse>, String> {
        {
            let sampler = self.inner.sampler.lock().unwrap();
            if let Err(e) = sampler.validate_rows(&req.attribute_rows) {
                self.inner.rejected.fetch_add(1, Ordering::Relaxed);
                return Err(e);
            }
        }
        let (reply, rx) = mpsc::channel();
        let job = Job { req, reply, enqueued: Instant::now() };
        let tx = self.tx.lock().unwrap().clone();
        match tx {
            Some(tx) => tx.send(job).map_err(|_| "serving engine stopped".to_string())?,
            None => return Err("serving engine stopped".to_string()),
        }
        Ok(rx)
    }

    /// Submits `req` and waits for its response.
    pub fn sample_blocking(&self, req: SampleRequest) -> Result<SampleResponse, String> {
        let rx = self.submit(req)?;
        rx.recv().map_err(|_| "serving engine stopped".to_string())
    }

    /// Atomically installs the newest valid release of `family` from
    /// `store`, if it differs from the one currently serving. In-flight
    /// fused passes complete against the release they snapshotted.
    pub fn reload<B: Backend>(
        &self,
        store: &ArtifactStore<B>,
        family: &str,
    ) -> Result<ReloadReport, SamplerError> {
        let mut sampler = self.inner.sampler.lock().unwrap();
        let report = sampler.reload(store, family)?;
        if report.reloaded {
            self.inner.reloads.fetch_add(1, Ordering::Relaxed);
        }
        Ok(report)
    }

    /// Installs a model directly (tests, in-process embedding).
    pub fn install(&self, model: Arc<DoppelGanger>, seq: Option<u64>) {
        self.inner.sampler.lock().unwrap().install(model, seq);
        self.inner.reloads.fetch_add(1, Ordering::Relaxed);
    }

    /// Sequence number of the release currently serving, if any.
    pub fn loaded_seq(&self) -> Option<u64> {
        self.inner.sampler.lock().unwrap().loaded_seq()
    }

    /// A point-in-time snapshot of the engine's counters.
    pub fn stats(&self) -> ServeStats {
        let (lat, window, held) = {
            let ring = self.inner.latencies.lock().unwrap();
            (ring.sorted(), ring.capacity(), ring.len())
        };
        ServeStats {
            requests: self.inner.requests.load(Ordering::Relaxed),
            batches: self.inner.batches.load(Ordering::Relaxed),
            samples: self.inner.samples.load(Ordering::Relaxed),
            rejected: self.inner.rejected.load(Ordering::Relaxed),
            reloads: self.inner.reloads.load(Ordering::Relaxed),
            p50_ms: percentile(&lat, 0.50),
            p99_ms: percentile(&lat, 0.99),
            precision: self.precision().name().to_string(),
            latency_window: window,
            latency_samples: held,
        }
    }

    /// Stops accepting requests, drains the queue, and joins the batcher.
    pub fn shutdown(&self) {
        drop(self.tx.lock().unwrap().take());
        if let Some(handle) = self.worker.lock().unwrap().take() {
            let _ = handle.join();
        }
    }
}

impl Drop for BatchEngine {
    fn drop(&mut self) {
        self.shutdown();
    }
}

fn batcher_loop(rx: Receiver<Job>, inner: Arc<Inner>, max_reqs: usize, max_rows: usize, max_wait: Duration) {
    while let Ok(first) = rx.recv() {
        // The gather window opens when the first request of a pass arrives:
        // with `max_wait` zero the loop only drains what is already queued
        // (the minimum-latency mode); otherwise it blocks up to the
        // remaining window for stragglers to widen the fused pass.
        let deadline = (max_wait > Duration::ZERO).then(|| Instant::now() + max_wait);
        let mut jobs = vec![first];
        let mut rows = jobs[0].req.rows();
        while jobs.len() < max_reqs && rows < max_rows {
            match rx.try_recv() {
                Ok(job) => {
                    rows += job.req.rows();
                    jobs.push(job);
                }
                Err(mpsc::TryRecvError::Disconnected) => break,
                Err(mpsc::TryRecvError::Empty) => {
                    let Some(deadline) = deadline else { break };
                    let now = Instant::now();
                    if now >= deadline {
                        break;
                    }
                    match rx.recv_timeout(deadline - now) {
                        Ok(job) => {
                            rows += job.req.rows();
                            jobs.push(job);
                        }
                        // Window expired or the engine is shutting down:
                        // serve what was gathered either way.
                        Err(_) => break,
                    }
                }
            }
        }
        // ONE model snapshot per fused pass: a concurrent reload swaps the
        // engine's sampler but cannot touch this pass.
        let snapshot = inner.sampler.lock().unwrap().clone();
        let seq = snapshot.loaded_seq();
        let precision = snapshot.precision();
        let reqs: Vec<SampleRequest> = jobs.iter().map(|j| j.req.clone()).collect();
        let outs = snapshot.sample_fused(&reqs);
        inner.batches.fetch_add(1, Ordering::Relaxed);
        for (job, objects) in jobs.into_iter().zip(outs) {
            let latency_ms = job.enqueued.elapsed().as_secs_f64() * 1e3;
            inner.requests.fetch_add(1, Ordering::Relaxed);
            inner.samples.fetch_add(objects.len() as u64, Ordering::Relaxed);
            inner.latencies.lock().unwrap().push(latency_ms);
            // A caller that gave up on its receiver is not an engine error.
            let _ = job.reply.send(SampleResponse { seq, objects, latency_ms, precision });
        }
    }
}

/// Nearest-rank percentile of an ascending-sorted slice (0.0 for empty).
pub fn percentile(sorted: &[f64], q: f64) -> f64 {
    if sorted.is_empty() {
        return 0.0;
    }
    let idx = ((sorted.len() as f64 * q).ceil() as usize).clamp(1, sorted.len()) - 1;
    sorted[idx]
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::DgConfig;
    use dg_data::Value;
    use dg_datasets::sine::{self, SineConfig};
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn tiny_model(seed: u64) -> DoppelGanger {
        let mut rng = StdRng::seed_from_u64(seed);
        let cfg = SineConfig { num_objects: 20, length: 16, periods: vec![4, 8], noise_sigma: 0.05 };
        let data = sine::generate(&cfg, &mut rng);
        let mut dg_cfg = DgConfig::quick().with_recommended_s(16);
        dg_cfg.attr_hidden = 8;
        dg_cfg.lstm_hidden = 8;
        dg_cfg.head_hidden = 8;
        dg_cfg.batch_size = 4;
        DoppelGanger::new(&data, dg_cfg, &mut rng)
    }

    fn req(n: usize, seed: u64) -> SampleRequest {
        SampleRequest { attribute_rows: (0..n).map(|k| vec![Value::Cat(k % 2)]).collect(), seed }
    }

    #[test]
    fn engine_serves_requests_identically_to_a_direct_sampler_call() {
        let model = tiny_model(50);
        let sampler = Sampler::new(model);
        let engine = BatchEngine::new(sampler.clone(), ServeConfig::default());
        let r = req(5, 99);
        let served = engine.sample_blocking(r.clone()).unwrap();
        let direct = sampler.sample_threaded(&r, 1);
        assert_eq!(
            serde_json::to_string(&served.objects).unwrap(),
            serde_json::to_string(&direct).unwrap(),
            "engine-served bytes must match a direct sequential call"
        );
        let stats = engine.stats();
        assert_eq!((stats.requests, stats.samples), (1, 5));
        assert!(stats.batches >= 1);
    }

    #[test]
    fn concurrent_submissions_all_complete_and_counters_add_up() {
        let engine = Arc::new(BatchEngine::new(Sampler::new(tiny_model(51)), ServeConfig::default()));
        let handles: Vec<_> = (0..8)
            .map(|i| {
                let engine = Arc::clone(&engine);
                std::thread::spawn(move || engine.sample_blocking(req(3, 1000 + i)).unwrap())
            })
            .collect();
        for h in handles {
            let resp = h.join().unwrap();
            assert_eq!(resp.objects.len(), 3);
            assert!(resp.latency_ms >= 0.0);
        }
        let stats = engine.stats();
        assert_eq!((stats.requests, stats.samples), (8, 24));
        assert!(stats.batches <= 8, "coalescing can only reduce pass count");
        assert!(stats.p99_ms >= stats.p50_ms);
    }

    #[test]
    fn invalid_requests_are_rejected_before_the_queue() {
        let engine = BatchEngine::new(Sampler::new(tiny_model(52)), ServeConfig::default());
        let bad = SampleRequest { attribute_rows: vec![vec![Value::Cat(0), Value::Cat(1)]], seed: 1 };
        assert!(engine.submit(bad).is_err());
        assert_eq!(engine.stats().rejected, 1);
        // The engine still serves after a rejection.
        assert_eq!(engine.sample_blocking(req(1, 2)).unwrap().objects.len(), 1);
    }

    #[test]
    fn install_swaps_the_model_without_disturbing_request_purity() {
        let m1 = tiny_model(53);
        let m2 = tiny_model(54);
        let engine = BatchEngine::new(Sampler::new(m1), ServeConfig::default());
        let r = req(4, 7);
        let before = engine.sample_blocking(r.clone()).unwrap();
        engine.install(Arc::new(m2.clone()), Some(2));
        let after = engine.sample_blocking(r.clone()).unwrap();
        assert_eq!(after.seq, Some(2));
        // Same request, new release: must match a direct call against m2.
        let direct = Sampler::new(m2).sample_threaded(&r, 1);
        assert_eq!(serde_json::to_string(&after.objects).unwrap(), serde_json::to_string(&direct).unwrap());
        // And the pre-reload response was a pure function of the old model.
        assert_ne!(
            serde_json::to_string(&before.objects).unwrap(),
            serde_json::to_string(&after.objects).unwrap()
        );
    }

    #[test]
    fn unbatched_mode_serves_one_request_per_pass() {
        let cfg = ServeConfig { max_fused_requests: 1, ..ServeConfig::default() };
        let engine = Arc::new(BatchEngine::new(Sampler::new(tiny_model(55)), cfg));
        let handles: Vec<_> = (0..4)
            .map(|i| {
                let engine = Arc::clone(&engine);
                std::thread::spawn(move || engine.sample_blocking(req(2, i)).unwrap())
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
        let stats = engine.stats();
        assert_eq!(stats.batches, 4, "max_fused_requests=1 must never coalesce");
    }

    #[test]
    fn shutdown_rejects_new_requests() {
        let engine = BatchEngine::new(Sampler::new(tiny_model(56)), ServeConfig::default());
        engine.shutdown();
        assert!(engine.submit(req(1, 1)).is_err());
    }

    #[test]
    fn percentile_is_nearest_rank() {
        assert_eq!(percentile(&[], 0.5), 0.0);
        assert_eq!(percentile(&[3.0], 0.99), 3.0);
        let v: Vec<f64> = (1..=100).map(|i| i as f64).collect();
        assert_eq!(percentile(&v, 0.50), 50.0);
        assert_eq!(percentile(&v, 0.99), 99.0);
    }

    #[test]
    fn latency_ring_keeps_exactly_the_most_recent_window() {
        let mut ring = LatencyRing::new(8);
        assert!(ring.is_empty());
        // Overfill 4x: the ring must retain exactly the last 8 pushes.
        for i in 0..32 {
            ring.push(i as f64);
        }
        assert_eq!((ring.len(), ring.capacity()), (8, 8));
        let sorted = ring.sorted();
        assert_eq!(sorted, (24..32).map(|i| i as f64).collect::<Vec<_>>());
        // Ring percentiles == exact nearest-rank over the last-window
        // slice of the full history.
        let mut exact: Vec<f64> = (24..32).map(|i| i as f64).collect();
        exact.sort_by(f64::total_cmp);
        assert_eq!(percentile(&sorted, 0.50), percentile(&exact, 0.50));
        assert_eq!(percentile(&sorted, 0.99), percentile(&exact, 0.99));
    }

    #[test]
    fn latency_ring_drops_non_finite_observations_instead_of_poisoning_stats() {
        let mut ring = LatencyRing::new(4);
        ring.push(f64::NAN);
        ring.push(1.0);
        ring.push(f64::INFINITY);
        ring.push(2.0);
        ring.push(f64::NEG_INFINITY);
        assert_eq!(ring.sorted(), vec![1.0, 2.0]);
        // sorted() itself must survive arbitrary f64s if one ever got in.
        let sorted = ring.sorted();
        assert!(percentile(&sorted, 0.99).is_finite());
    }

    #[test]
    fn soak_latency_memory_stays_bounded_across_many_times_the_window() {
        // 10x+ the window of sequential requests: the engine must retain at
        // most `latency_window` observations and report sane percentiles.
        let cfg = ServeConfig { latency_window: 16, ..ServeConfig::default() };
        let engine = BatchEngine::new(Sampler::new(tiny_model(57)), cfg);
        for i in 0..200u64 {
            let resp = engine.sample_blocking(req(1, i)).unwrap();
            assert_eq!(resp.objects.len(), 1);
        }
        let stats = engine.stats();
        assert_eq!(stats.requests, 200);
        assert_eq!(stats.latency_window, 16);
        assert_eq!(stats.latency_samples, 16, "ring must cap at the window");
        assert!(stats.p50_ms.is_finite() && stats.p50_ms > 0.0);
        assert!(stats.p99_ms >= stats.p50_ms);
    }

    #[test]
    fn gather_window_fuses_a_steady_trickle_into_fewer_passes() {
        // A generous window: requests submitted one-by-one from separate
        // threads land inside a single gather window with high probability.
        let cfg = ServeConfig { max_wait_us: 200_000, ..ServeConfig::default() };
        let engine = Arc::new(BatchEngine::new(Sampler::new(tiny_model(58)), cfg));
        let handles: Vec<_> = (0..6)
            .map(|i| {
                let engine = Arc::clone(&engine);
                std::thread::spawn(move || {
                    std::thread::sleep(std::time::Duration::from_millis(5 * i));
                    engine.sample_blocking(req(2, 100 + i)).unwrap()
                })
            })
            .collect();
        for h in handles {
            assert_eq!(h.join().unwrap().objects.len(), 2);
        }
        let stats = engine.stats();
        assert_eq!((stats.requests, stats.samples), (6, 12));
        assert!(
            stats.batches < 6,
            "a 200ms gather window must coalesce a 5ms-spaced trickle (got {} passes)",
            stats.batches
        );
    }

    #[test]
    fn bf16_engine_serves_the_reduced_precision_tier_and_echoes_it() {
        let model = tiny_model(59);
        let cfg = ServeConfig { precision: Precision::Bf16, ..ServeConfig::default() };
        let engine = BatchEngine::new(Sampler::new(model.clone()), cfg);
        assert_eq!(engine.precision(), Precision::Bf16);
        let r = req(5, 41);
        let served = engine.sample_blocking(r.clone()).unwrap();
        assert_eq!(served.precision, Precision::Bf16);
        assert_eq!(engine.stats().precision, "bf16");
        // Served bytes match a direct bf16 sampler call, not the f32 tier.
        let direct_bf16 = Sampler::new(model.clone()).with_precision(Precision::Bf16).sample_threaded(&r, 1);
        let direct_f32 = Sampler::new(model).sample_threaded(&r, 1);
        assert_eq!(
            serde_json::to_string(&served.objects).unwrap(),
            serde_json::to_string(&direct_bf16).unwrap()
        );
        assert_ne!(
            serde_json::to_string(&served.objects).unwrap(),
            serde_json::to_string(&direct_f32).unwrap()
        );
    }
}
