//! In-process serving engine: a bounded request queue draining into fused
//! generation passes, with atomic hot-reload and request/batch/latency
//! counters.
//!
//! [`BatchEngine`] sits between a transport (the `dg serve` socket/stdio
//! front end, the serving bench) and a [`Sampler`]:
//!
//! * callers submit [`SampleRequest`]s into a bounded queue
//!   (backpressure: a full queue blocks the submitter, it never grows
//!   unbounded);
//! * a single batcher thread drains whatever is queued — up to
//!   [`ServeConfig::max_fused_requests`] requests /
//!   [`ServeConfig::max_fused_rows`] rows — and serves them in **one**
//!   fused [`Sampler::sample_fused`] pass, so concurrent callers share
//!   graph recordings and wide GEMMs instead of queuing per-request
//!   passes;
//! * the batcher snapshots the model handle **once per fused pass**:
//!   [`BatchEngine::reload`] swaps the engine's [`Sampler`] atomically,
//!   in-flight passes finish against the release they started with, and
//!   every later pass picks up the new one — the hot-reload atomicity
//!   contract `dg serve` exposes.
//!
//! Fusion never changes bytes: each request's output depends only on its
//! own `(attribute_rows, seed)` and the loaded release (see the
//! determinism notes in [`crate::sampler`]), so a request observes the
//! same series whether it ran alone or coalesced with strangers.

use crate::model::DoppelGanger;
use crate::sampler::{ReloadReport, SampleRequest, Sampler, SamplerError};
use dg_data::TimeSeriesObject;
use dg_io::{ArtifactStore, Backend};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::mpsc::{self, Receiver, SyncSender};
use std::sync::{Arc, Mutex};
use std::time::Instant;

/// Tuning knobs for a [`BatchEngine`].
#[derive(Debug, Clone)]
pub struct ServeConfig {
    /// Maximum requests coalesced into one fused pass. `1` disables
    /// coalescing entirely (the unbatched reference mode the serving
    /// bench compares against).
    pub max_fused_requests: usize,
    /// Maximum total rows (synthetic objects) per fused pass.
    pub max_fused_rows: usize,
    /// Bound of the request queue; submitters block when it is full.
    pub queue_depth: usize,
}

impl Default for ServeConfig {
    fn default() -> Self {
        ServeConfig { max_fused_requests: 64, max_fused_rows: 4096, queue_depth: 256 }
    }
}

/// One served response.
#[derive(Debug, Clone)]
pub struct SampleResponse {
    /// Artifact sequence number of the release that generated this
    /// response, when the model came from a store.
    pub seq: Option<u64>,
    /// The generated synthetic objects, one per requested attribute row.
    pub objects: Vec<TimeSeriesObject>,
    /// Queue + generation latency observed by the engine, milliseconds.
    pub latency_ms: f64,
}

/// A point-in-time snapshot of the engine's counters.
#[derive(Debug, Clone, serde::Serialize)]
pub struct ServeStats {
    /// Requests served (responses delivered).
    pub requests: u64,
    /// Fused passes executed.
    pub batches: u64,
    /// Synthetic objects generated.
    pub samples: u64,
    /// Requests rejected at validation.
    pub rejected: u64,
    /// Hot-reloads that installed a different release.
    pub reloads: u64,
    /// Median request latency, milliseconds.
    pub p50_ms: f64,
    /// 99th-percentile request latency, milliseconds.
    pub p99_ms: f64,
}

struct Job {
    req: SampleRequest,
    reply: mpsc::Sender<SampleResponse>,
    enqueued: Instant,
}

struct Inner {
    sampler: Mutex<Sampler>,
    requests: AtomicU64,
    batches: AtomicU64,
    samples: AtomicU64,
    rejected: AtomicU64,
    reloads: AtomicU64,
    latencies: Mutex<Vec<f64>>,
}

/// The request-coalescing serving engine. See the module docs for the
/// queue/fusion/hot-reload contract.
pub struct BatchEngine {
    tx: Mutex<Option<SyncSender<Job>>>,
    inner: Arc<Inner>,
    worker: Mutex<Option<std::thread::JoinHandle<()>>>,
}

impl BatchEngine {
    /// Starts an engine (and its batcher thread) over `sampler`.
    pub fn new(sampler: Sampler, config: ServeConfig) -> Self {
        let inner = Arc::new(Inner {
            sampler: Mutex::new(sampler),
            requests: AtomicU64::new(0),
            batches: AtomicU64::new(0),
            samples: AtomicU64::new(0),
            rejected: AtomicU64::new(0),
            reloads: AtomicU64::new(0),
            latencies: Mutex::new(Vec::new()),
        });
        let (tx, rx) = mpsc::sync_channel::<Job>(config.queue_depth.max(1));
        let worker = {
            let inner = Arc::clone(&inner);
            let max_reqs = config.max_fused_requests.max(1);
            let max_rows = config.max_fused_rows.max(1);
            std::thread::spawn(move || batcher_loop(rx, inner, max_reqs, max_rows))
        };
        BatchEngine { tx: Mutex::new(Some(tx)), inner, worker: Mutex::new(Some(worker)) }
    }

    /// Validates and enqueues `req`, returning the channel its response
    /// will arrive on. Blocks while the queue is full (backpressure).
    pub fn submit(&self, req: SampleRequest) -> Result<Receiver<SampleResponse>, String> {
        {
            let sampler = self.inner.sampler.lock().unwrap();
            if let Err(e) = sampler.validate_rows(&req.attribute_rows) {
                self.inner.rejected.fetch_add(1, Ordering::Relaxed);
                return Err(e);
            }
        }
        let (reply, rx) = mpsc::channel();
        let job = Job { req, reply, enqueued: Instant::now() };
        let tx = self.tx.lock().unwrap().clone();
        match tx {
            Some(tx) => tx.send(job).map_err(|_| "serving engine stopped".to_string())?,
            None => return Err("serving engine stopped".to_string()),
        }
        Ok(rx)
    }

    /// Submits `req` and waits for its response.
    pub fn sample_blocking(&self, req: SampleRequest) -> Result<SampleResponse, String> {
        let rx = self.submit(req)?;
        rx.recv().map_err(|_| "serving engine stopped".to_string())
    }

    /// Atomically installs the newest valid release of `family` from
    /// `store`, if it differs from the one currently serving. In-flight
    /// fused passes complete against the release they snapshotted.
    pub fn reload<B: Backend>(
        &self,
        store: &ArtifactStore<B>,
        family: &str,
    ) -> Result<ReloadReport, SamplerError> {
        let mut sampler = self.inner.sampler.lock().unwrap();
        let report = sampler.reload(store, family)?;
        if report.reloaded {
            self.inner.reloads.fetch_add(1, Ordering::Relaxed);
        }
        Ok(report)
    }

    /// Installs a model directly (tests, in-process embedding).
    pub fn install(&self, model: Arc<DoppelGanger>, seq: Option<u64>) {
        self.inner.sampler.lock().unwrap().install(model, seq);
        self.inner.reloads.fetch_add(1, Ordering::Relaxed);
    }

    /// Sequence number of the release currently serving, if any.
    pub fn loaded_seq(&self) -> Option<u64> {
        self.inner.sampler.lock().unwrap().loaded_seq()
    }

    /// A point-in-time snapshot of the engine's counters.
    pub fn stats(&self) -> ServeStats {
        let mut lat = self.inner.latencies.lock().unwrap().clone();
        lat.sort_by(|a, b| a.partial_cmp(b).expect("latencies are finite"));
        ServeStats {
            requests: self.inner.requests.load(Ordering::Relaxed),
            batches: self.inner.batches.load(Ordering::Relaxed),
            samples: self.inner.samples.load(Ordering::Relaxed),
            rejected: self.inner.rejected.load(Ordering::Relaxed),
            reloads: self.inner.reloads.load(Ordering::Relaxed),
            p50_ms: percentile(&lat, 0.50),
            p99_ms: percentile(&lat, 0.99),
        }
    }

    /// Stops accepting requests, drains the queue, and joins the batcher.
    pub fn shutdown(&self) {
        drop(self.tx.lock().unwrap().take());
        if let Some(handle) = self.worker.lock().unwrap().take() {
            let _ = handle.join();
        }
    }
}

impl Drop for BatchEngine {
    fn drop(&mut self) {
        self.shutdown();
    }
}

fn batcher_loop(rx: Receiver<Job>, inner: Arc<Inner>, max_reqs: usize, max_rows: usize) {
    while let Ok(first) = rx.recv() {
        let mut jobs = vec![first];
        let mut rows = jobs[0].req.rows();
        while jobs.len() < max_reqs && rows < max_rows {
            match rx.try_recv() {
                Ok(job) => {
                    rows += job.req.rows();
                    jobs.push(job);
                }
                Err(_) => break,
            }
        }
        // ONE model snapshot per fused pass: a concurrent reload swaps the
        // engine's sampler but cannot touch this pass.
        let snapshot = inner.sampler.lock().unwrap().clone();
        let seq = snapshot.loaded_seq();
        let reqs: Vec<SampleRequest> = jobs.iter().map(|j| j.req.clone()).collect();
        let outs = snapshot.sample_fused(&reqs);
        inner.batches.fetch_add(1, Ordering::Relaxed);
        for (job, objects) in jobs.into_iter().zip(outs) {
            let latency_ms = job.enqueued.elapsed().as_secs_f64() * 1e3;
            inner.requests.fetch_add(1, Ordering::Relaxed);
            inner.samples.fetch_add(objects.len() as u64, Ordering::Relaxed);
            inner.latencies.lock().unwrap().push(latency_ms);
            // A caller that gave up on its receiver is not an engine error.
            let _ = job.reply.send(SampleResponse { seq, objects, latency_ms });
        }
    }
}

/// Nearest-rank percentile of an ascending-sorted slice (0.0 for empty).
pub fn percentile(sorted: &[f64], q: f64) -> f64 {
    if sorted.is_empty() {
        return 0.0;
    }
    let idx = ((sorted.len() as f64 * q).ceil() as usize).clamp(1, sorted.len()) - 1;
    sorted[idx]
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::DgConfig;
    use dg_data::Value;
    use dg_datasets::sine::{self, SineConfig};
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn tiny_model(seed: u64) -> DoppelGanger {
        let mut rng = StdRng::seed_from_u64(seed);
        let cfg = SineConfig { num_objects: 20, length: 16, periods: vec![4, 8], noise_sigma: 0.05 };
        let data = sine::generate(&cfg, &mut rng);
        let mut dg_cfg = DgConfig::quick().with_recommended_s(16);
        dg_cfg.attr_hidden = 8;
        dg_cfg.lstm_hidden = 8;
        dg_cfg.head_hidden = 8;
        dg_cfg.batch_size = 4;
        DoppelGanger::new(&data, dg_cfg, &mut rng)
    }

    fn req(n: usize, seed: u64) -> SampleRequest {
        SampleRequest { attribute_rows: (0..n).map(|k| vec![Value::Cat(k % 2)]).collect(), seed }
    }

    #[test]
    fn engine_serves_requests_identically_to_a_direct_sampler_call() {
        let model = tiny_model(50);
        let sampler = Sampler::new(model);
        let engine = BatchEngine::new(sampler.clone(), ServeConfig::default());
        let r = req(5, 99);
        let served = engine.sample_blocking(r.clone()).unwrap();
        let direct = sampler.sample_threaded(&r, 1);
        assert_eq!(
            serde_json::to_string(&served.objects).unwrap(),
            serde_json::to_string(&direct).unwrap(),
            "engine-served bytes must match a direct sequential call"
        );
        let stats = engine.stats();
        assert_eq!((stats.requests, stats.samples), (1, 5));
        assert!(stats.batches >= 1);
    }

    #[test]
    fn concurrent_submissions_all_complete_and_counters_add_up() {
        let engine = Arc::new(BatchEngine::new(Sampler::new(tiny_model(51)), ServeConfig::default()));
        let handles: Vec<_> = (0..8)
            .map(|i| {
                let engine = Arc::clone(&engine);
                std::thread::spawn(move || engine.sample_blocking(req(3, 1000 + i)).unwrap())
            })
            .collect();
        for h in handles {
            let resp = h.join().unwrap();
            assert_eq!(resp.objects.len(), 3);
            assert!(resp.latency_ms >= 0.0);
        }
        let stats = engine.stats();
        assert_eq!((stats.requests, stats.samples), (8, 24));
        assert!(stats.batches <= 8, "coalescing can only reduce pass count");
        assert!(stats.p99_ms >= stats.p50_ms);
    }

    #[test]
    fn invalid_requests_are_rejected_before_the_queue() {
        let engine = BatchEngine::new(Sampler::new(tiny_model(52)), ServeConfig::default());
        let bad = SampleRequest { attribute_rows: vec![vec![Value::Cat(0), Value::Cat(1)]], seed: 1 };
        assert!(engine.submit(bad).is_err());
        assert_eq!(engine.stats().rejected, 1);
        // The engine still serves after a rejection.
        assert_eq!(engine.sample_blocking(req(1, 2)).unwrap().objects.len(), 1);
    }

    #[test]
    fn install_swaps_the_model_without_disturbing_request_purity() {
        let m1 = tiny_model(53);
        let m2 = tiny_model(54);
        let engine = BatchEngine::new(Sampler::new(m1), ServeConfig::default());
        let r = req(4, 7);
        let before = engine.sample_blocking(r.clone()).unwrap();
        engine.install(Arc::new(m2.clone()), Some(2));
        let after = engine.sample_blocking(r.clone()).unwrap();
        assert_eq!(after.seq, Some(2));
        // Same request, new release: must match a direct call against m2.
        let direct = Sampler::new(m2).sample_threaded(&r, 1);
        assert_eq!(serde_json::to_string(&after.objects).unwrap(), serde_json::to_string(&direct).unwrap());
        // And the pre-reload response was a pure function of the old model.
        assert_ne!(
            serde_json::to_string(&before.objects).unwrap(),
            serde_json::to_string(&after.objects).unwrap()
        );
    }

    #[test]
    fn unbatched_mode_serves_one_request_per_pass() {
        let cfg = ServeConfig { max_fused_requests: 1, ..ServeConfig::default() };
        let engine = Arc::new(BatchEngine::new(Sampler::new(tiny_model(55)), cfg));
        let handles: Vec<_> = (0..4)
            .map(|i| {
                let engine = Arc::clone(&engine);
                std::thread::spawn(move || engine.sample_blocking(req(2, i)).unwrap())
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
        let stats = engine.stats();
        assert_eq!(stats.batches, 4, "max_fused_requests=1 must never coalesce");
    }

    #[test]
    fn shutdown_rejects_new_requests() {
        let engine = BatchEngine::new(Sampler::new(tiny_model(56)), ServeConfig::default());
        engine.shutdown();
        assert!(engine.submit(req(1, 1)).is_err());
    }

    #[test]
    fn percentile_is_nearest_rank() {
        assert_eq!(percentile(&[], 0.5), 0.0);
        assert_eq!(percentile(&[3.0], 0.99), 3.0);
        let v: Vec<f64> = (1..=100).map(|i| i as f64).collect();
        assert_eq!(percentile(&v, 0.50), 50.0);
        assert_eq!(percentile(&v, 0.99), 99.0);
    }
}
