//! In-process serving engine: a bounded request queue draining into fused
//! generation passes, with atomic hot-reload, admission control, panic
//! isolation, and request/batch/latency counters.
//!
//! [`BatchEngine`] sits between a transport (the `dg serve` socket/stdio
//! front end, the serving bench) and a [`Sampler`]:
//!
//! * callers submit [`SampleRequest`]s into a bounded queue — blocking
//!   ([`BatchEngine::submit`], backpressure) or shedding
//!   ([`BatchEngine::try_submit`], admission control: past
//!   [`ServeConfig::shed_threshold`] the engine answers
//!   [`ServeError::Overloaded`] immediately instead of wedging the
//!   caller);
//! * every request may carry a client deadline: expired requests are
//!   dropped **at dequeue** with [`ServeError::DeadlineExceeded`] so they
//!   never occupy a fused-pass slot, and every waiting path uses a
//!   bounded `recv_timeout` (default [`ServeConfig::default_deadline_ms`])
//!   — no submitter can hang forever;
//! * a single batcher thread drains whatever is queued — up to
//!   [`ServeConfig::max_fused_requests`] requests /
//!   [`ServeConfig::max_fused_rows`] rows, optionally holding the pass
//!   open for [`ServeConfig::max_wait_us`] microseconds to gather
//!   stragglers — and serves them in **one** fused
//!   [`Sampler::sample_fused`] pass, so concurrent callers share graph
//!   recordings and wide GEMMs instead of queuing per-request passes;
//! * each fused pass runs under `catch_unwind`: a panic converts to
//!   per-request [`ServeError::PassPanicked`] replies and a `pass_panics`
//!   counter, and the batcher keeps serving later passes. Engine locks
//!   tolerate poisoning, so a panicked pass can never cascade into
//!   poisoned-mutex panics on unrelated requests;
//! * request latencies feed a bounded [`LatencyRing`] (window size
//!   [`ServeConfig::latency_window`]), so [`ServeStats`] percentiles are
//!   sliding-window estimates and engine memory stays constant over
//!   arbitrarily long runs;
//! * generation can run at a reduced inference precision
//!   ([`ServeConfig::precision`], echoed in every [`SampleResponse`] and
//!   [`ServeStats`] snapshot) — the serving-only bf16 tier of
//!   `dg_nn::kernels`;
//! * the batcher snapshots the model handle **once per fused pass**:
//!   [`BatchEngine::reload`] swaps the engine's [`Sampler`] atomically,
//!   in-flight passes finish against the release they started with, and
//!   every later pass picks up the new one — the hot-reload atomicity
//!   contract `dg serve` exposes. Reload failures degrade
//!   [`ServeHealth`] (and successes recover it) without ever unloading
//!   the release that is already serving;
//! * a seeded, test-only [`ServeFaultPlan`] can inject a panic or stall
//!   into generation pass *k* and an `ENOSPC`-style store error into
//!   reload poll *k* — the serving analogue of `dg_io::FaultPlan`,
//!   driving the `serve_faults` sweep that proves all of the above.
//!
//! Fusion never changes bytes: each request's output depends only on its
//! own `(attribute_rows, seed)` and the loaded release (see the
//! determinism notes in [`crate::sampler`]), so a request observes the
//! same series whether it ran alone or coalesced with strangers.

use crate::model::DoppelGanger;
use crate::sampler::{ReloadReport, SampleRequest, Sampler, SamplerError};
use dg_data::TimeSeriesObject;
use dg_io::{ArtifactStore, Backend, StoreError};
use dg_nn::kernels::Precision;
use std::panic::AssertUnwindSafe;
use std::path::Path;
use std::sync::atomic::{AtomicU64, AtomicU8, Ordering};
use std::sync::mpsc::{self, Receiver, SyncSender};
use std::sync::{Arc, Mutex, MutexGuard};
use std::time::{Duration, Instant};

/// Locks `m`, recovering the guard if a previous holder panicked.
///
/// Engine state (sampler handle, latency ring) stays consistent across a
/// panicked fused pass — the pass mutates nothing under these locks — so
/// poisoning carries no information here and must not cascade one panic
/// into failures on every later request.
fn lock_unpoisoned<T>(m: &Mutex<T>) -> MutexGuard<'_, T> {
    m.lock().unwrap_or_else(|poisoned| poisoned.into_inner())
}

/// Why the engine did not deliver a successful response.
///
/// `Display` renders the stable wire-facing phrases (`"overloaded"`,
/// `"deadline exceeded"`, …) that `dg serve` puts in the `error` field and
/// the README documents.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ServeError {
    /// Admission control shed the request: the queue was at or past
    /// [`ServeConfig::shed_threshold`].
    Overloaded,
    /// The request's deadline expired while it was queued, or the caller's
    /// bounded wait ran out before a response arrived.
    DeadlineExceeded,
    /// The request failed validation against the serving release's schema.
    Invalid(String),
    /// The engine has shut down.
    Stopped,
    /// The fused pass this request rode in panicked; the engine isolated
    /// the panic and kept serving.
    PassPanicked(String),
}

impl std::fmt::Display for ServeError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ServeError::Overloaded => write!(f, "overloaded"),
            ServeError::DeadlineExceeded => write!(f, "deadline exceeded"),
            ServeError::Invalid(msg) => write!(f, "{msg}"),
            ServeError::Stopped => write!(f, "serving engine stopped"),
            ServeError::PassPanicked(msg) => write!(f, "generation pass panicked: {msg}"),
        }
    }
}

impl std::error::Error for ServeError {}

/// Coarse engine health, surfaced in heartbeats and the `{"health":true}`
/// wire verb so load balancers can probe readiness.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[repr(u8)]
pub enum ServeHealth {
    /// Serving normally.
    Ok = 0,
    /// Still serving the last good release, but the most recent reload
    /// poll(s) failed. Recovers to [`ServeHealth::Ok`] on the next
    /// successful poll.
    Degraded = 1,
    /// Shutting down: no longer accepting work, finishing what is in
    /// flight. Terminal — a draining engine never reports another state.
    Draining = 2,
}

impl ServeHealth {
    /// The lowercase wire/telemetry name (`"ok"` / `"degraded"` /
    /// `"draining"`).
    pub fn name(self) -> &'static str {
        match self {
            ServeHealth::Ok => "ok",
            ServeHealth::Degraded => "degraded",
            ServeHealth::Draining => "draining",
        }
    }

    fn from_u8(v: u8) -> Self {
        match v {
            1 => ServeHealth::Degraded,
            2 => ServeHealth::Draining,
            _ => ServeHealth::Ok,
        }
    }
}

/// Deterministic fault injection for the serving path — the serving
/// analogue of `dg_io::FaultPlan`, and test-only in the same sense: an
/// inert (default) plan is free, and nothing in production wiring sets a
/// non-inert one except the `DG_SERVE_FAULT` chaos hook in `dg serve`.
///
/// Pass indices count fused generation passes the batcher *attempts*
/// (0-based); poll indices count [`BatchEngine::reload`] calls.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct ServeFaultPlan {
    /// Panic inside fused generation pass `k` (after any stall). The
    /// panic fires inside the batcher's `catch_unwind` scope, exactly
    /// where a real generation bug would.
    pub panic_on_pass: Option<u64>,
    /// Stall fused generation pass `k` for [`ServeFaultPlan::stall_ms`]
    /// before generating — wedges the batcher deterministically so
    /// overload/deadline paths can be exercised.
    pub stall_on_pass: Option<u64>,
    /// Stall duration for `stall_on_pass`, milliseconds.
    pub stall_ms: u64,
    /// Fail reload poll `k` with an `ENOSPC`-style [`StoreError`] before
    /// any store I/O happens.
    pub reload_fail_on_poll: Option<u64>,
    /// Fail every reload poll `>= k` — for driving the backoff/Degraded
    /// path rather than a single blip.
    pub reload_fail_from: Option<u64>,
}

impl ServeFaultPlan {
    /// Whether the plan injects nothing.
    pub fn is_inert(&self) -> bool {
        self.panic_on_pass.is_none()
            && self.stall_on_pass.is_none()
            && self.reload_fail_on_poll.is_none()
            && self.reload_fail_from.is_none()
    }

    /// A plan with a pseudo-random panic pass and reload-failure poll in
    /// `[0, horizon)`, fully determined by `seed` (splitmix64 — stable
    /// across platforms and runs).
    pub fn seeded(seed: u64, horizon: u64) -> Self {
        fn splitmix64(mut x: u64) -> u64 {
            x = x.wrapping_add(0x9e3779b97f4a7c15);
            x = (x ^ (x >> 30)).wrapping_mul(0xbf58476d1ce4e5b9);
            x = (x ^ (x >> 27)).wrapping_mul(0x94d049bb133111eb);
            x ^ (x >> 31)
        }
        let h = horizon.max(1);
        ServeFaultPlan {
            panic_on_pass: Some(splitmix64(seed) % h),
            reload_fail_on_poll: Some(splitmix64(seed.wrapping_add(1)) % h),
            ..ServeFaultPlan::default()
        }
    }

    /// Parses the `DG_SERVE_FAULT` syntax: comma-separated `key=value`
    /// pairs over the plan's field names, e.g.
    /// `panic_on_pass=2,reload_fail_from=0` or
    /// `stall_on_pass=0,stall_ms=400`.
    pub fn parse(s: &str) -> Result<Self, String> {
        let mut plan = ServeFaultPlan::default();
        for part in s.split(',').map(str::trim).filter(|p| !p.is_empty()) {
            let (key, value) =
                part.split_once('=').ok_or_else(|| format!("expected key=value, got '{part}'"))?;
            let v: u64 =
                value.trim().parse().map_err(|_| format!("invalid number '{}' in '{part}'", value.trim()))?;
            match key.trim() {
                "panic_on_pass" => plan.panic_on_pass = Some(v),
                "stall_on_pass" => plan.stall_on_pass = Some(v),
                "stall_ms" => plan.stall_ms = v,
                "reload_fail_on_poll" => plan.reload_fail_on_poll = Some(v),
                "reload_fail_from" => plan.reload_fail_from = Some(v),
                other => return Err(format!("unknown fault key '{other}'")),
            }
        }
        Ok(plan)
    }

    /// Applies pass-scoped faults for pass index `pass`. Called inside the
    /// batcher's `catch_unwind` scope; may sleep and may panic.
    fn apply_pass(&self, pass: u64) {
        if self.stall_on_pass == Some(pass) && self.stall_ms > 0 {
            std::thread::sleep(Duration::from_millis(self.stall_ms));
        }
        if self.panic_on_pass == Some(pass) {
            panic!("injected serving fault: generation pass {pass}");
        }
    }

    /// The injected failure for reload poll `poll`, if the plan has one.
    fn injected_reload_failure(&self, poll: u64) -> Option<SamplerError> {
        let hit =
            self.reload_fail_on_poll == Some(poll) || self.reload_fail_from.is_some_and(|from| poll >= from);
        hit.then(|| {
            SamplerError::Store(StoreError::new(
                "reload",
                Path::new("<injected>"),
                dg_io::ErrorKind::NoSpace,
                format!("injected serving fault: reload poll {poll}"),
            ))
        })
    }
}

/// Tuning knobs for a [`BatchEngine`].
#[derive(Debug, Clone)]
pub struct ServeConfig {
    /// Maximum requests coalesced into one fused pass. `1` disables
    /// coalescing entirely (the unbatched reference mode the serving
    /// bench compares against).
    pub max_fused_requests: usize,
    /// Maximum total rows (synthetic objects) per fused pass.
    pub max_fused_rows: usize,
    /// Bound of the request queue; [`BatchEngine::submit`] blocks when it
    /// is full.
    pub queue_depth: usize,
    /// How long (microseconds) the batcher keeps gathering once at least
    /// one request is in hand, waiting for more requests to fuse. `0`
    /// (the default) preserves the original behavior: drain whatever is
    /// already queued and go — minimum latency, but under a steady trickle
    /// of single requests every pass serves exactly one. A small window
    /// (~hundreds of µs) trades that much added latency for wider fused
    /// passes and higher throughput.
    pub max_wait_us: u64,
    /// How many of the most recent request latencies the engine retains
    /// for its [`ServeStats`] percentiles. Bounds the engine's memory over
    /// arbitrarily long runs; see [`LatencyRing`].
    pub latency_window: usize,
    /// Numeric precision generation passes run at. [`Precision::Bf16`]
    /// selects the reduced-precision inference tier — faster, validated by
    /// distribution rather than bitwise (see `DESIGN.md` §14). Only
    /// serving reads this; training never constructs a [`BatchEngine`].
    pub precision: Precision,
    /// Queue occupancy at which [`BatchEngine::try_submit`] sheds instead
    /// of enqueuing. `0` (the default) means "the queue bound itself":
    /// shed only when the queue is actually full.
    pub shed_threshold: usize,
    /// Upper bound (milliseconds) on how long [`BatchEngine::sample_blocking`]
    /// and deadline-less [`BatchEngine::sample_with_deadline`] calls wait
    /// for a response before returning [`ServeError::DeadlineExceeded`].
    /// The backstop that turns "server wedged" into a structured error.
    pub default_deadline_ms: u64,
    /// Fault injection for the serving path. Inert by default; see
    /// [`ServeFaultPlan`].
    pub faults: ServeFaultPlan,
}

impl Default for ServeConfig {
    fn default() -> Self {
        ServeConfig {
            max_fused_requests: 64,
            max_fused_rows: 4096,
            queue_depth: 256,
            max_wait_us: 0,
            latency_window: 4096,
            precision: Precision::F32,
            shed_threshold: 0,
            default_deadline_ms: 30_000,
            faults: ServeFaultPlan::default(),
        }
    }
}

/// One served response.
#[derive(Debug, Clone)]
pub struct SampleResponse {
    /// Artifact sequence number of the release that generated this
    /// response, when the model came from a store.
    pub seq: Option<u64>,
    /// The generated synthetic objects, one per requested attribute row.
    pub objects: Vec<TimeSeriesObject>,
    /// Queue + generation latency observed by the engine, milliseconds.
    pub latency_ms: f64,
    /// Numeric precision the generation pass ran at.
    pub precision: Precision,
}

/// A point-in-time snapshot of the engine's counters.
///
/// The latency percentiles are **nearest-rank estimates over a bounded
/// sliding window** of the most recent [`ServeStats::latency_window`]
/// finite observations (see [`LatencyRing`]) — not over process lifetime.
/// A long-running server therefore reports *recent* tail latency, and the
/// engine's memory stays bounded no matter how many requests it serves.
#[derive(Debug, Clone, serde::Serialize)]
pub struct ServeStats {
    /// Requests served (responses delivered).
    pub requests: u64,
    /// Fused passes executed.
    pub batches: u64,
    /// Synthetic objects generated.
    pub samples: u64,
    /// Requests rejected at validation.
    pub rejected: u64,
    /// Requests shed by admission control (queue past the threshold).
    pub shed: u64,
    /// Requests whose client deadline expired while they were queued.
    pub deadline_expired: u64,
    /// Fused passes that panicked (isolated; the engine kept serving).
    pub pass_panics: u64,
    /// Hot-reloads that installed a different release.
    pub reloads: u64,
    /// Median request latency over the retained window, milliseconds.
    pub p50_ms: f64,
    /// 99th-percentile request latency over the retained window,
    /// milliseconds.
    pub p99_ms: f64,
    /// Numeric precision generation passes run at (`"f32"` / `"bf16"`).
    pub precision: String,
    /// Engine health (`"ok"` / `"degraded"` / `"draining"`).
    pub health: String,
    /// Capacity of the latency window the percentiles estimate over.
    pub latency_window: usize,
    /// Latency observations currently retained (≤ `latency_window`).
    pub latency_samples: usize,
    /// Generation-plan cache hits: fused passes (per row-chunk) that
    /// replayed an already-recorded tape instead of re-recording it.
    pub plan_cache_hits: u64,
    /// Generation-plan cache misses: row-chunks that recorded a fresh
    /// tape (first sighting of a shape, or cache disabled/evicted).
    pub plan_cache_misses: u64,
}

struct Job {
    req: SampleRequest,
    reply: mpsc::Sender<Result<SampleResponse, ServeError>>,
    enqueued: Instant,
    /// Client deadline; checked at dequeue so an expired request never
    /// occupies a fused-pass slot.
    deadline: Option<Instant>,
}

/// A bounded ring of the most recent latency observations.
///
/// The serving loop originally pushed every request latency into an
/// unbounded `Vec`, which grows without limit over a long-running
/// process (~8 bytes per request, forever). The ring instead retains the
/// last `capacity` **finite** observations — non-finite measurements are
/// dropped at insertion, so a single poisoned value can never reach the
/// percentile sort — overwriting the oldest entry once full. Percentiles
/// computed from [`LatencyRing::sorted`] are therefore nearest-rank
/// estimates over a sliding window of the most recent requests.
#[derive(Debug, Clone)]
pub struct LatencyRing {
    buf: Vec<f64>,
    head: usize,
    cap: usize,
}

impl LatencyRing {
    /// An empty ring retaining at most `capacity` observations (min 1).
    pub fn new(capacity: usize) -> Self {
        LatencyRing { buf: Vec::new(), head: 0, cap: capacity.max(1) }
    }

    /// Records one observation. Non-finite values are silently dropped.
    pub fn push(&mut self, v: f64) {
        if !v.is_finite() {
            return;
        }
        if self.buf.len() < self.cap {
            self.buf.push(v);
        } else {
            self.buf[self.head] = v;
            self.head = (self.head + 1) % self.cap;
        }
    }

    /// Observations currently retained (≤ capacity).
    pub fn len(&self) -> usize {
        self.buf.len()
    }

    /// Whether the ring retains no observations.
    pub fn is_empty(&self) -> bool {
        self.buf.is_empty()
    }

    /// The retention bound.
    pub fn capacity(&self) -> usize {
        self.cap
    }

    /// The retained observations, ascending (a sorted copy; `total_cmp`
    /// is a total order, so this cannot panic regardless of input).
    pub fn sorted(&self) -> Vec<f64> {
        let mut v = self.buf.clone();
        v.sort_by(f64::total_cmp);
        v
    }
}

struct Inner {
    sampler: Mutex<Sampler>,
    requests: AtomicU64,
    batches: AtomicU64,
    samples: AtomicU64,
    rejected: AtomicU64,
    shed: AtomicU64,
    deadline_expired: AtomicU64,
    pass_panics: AtomicU64,
    reloads: AtomicU64,
    /// Jobs sent to the batcher but not yet dequeued — the occupancy
    /// admission control sheds on. Incremented before a send, decremented
    /// by the batcher on receive, so it never underflows.
    queued: AtomicU64,
    /// Fused passes *attempted* (0-based index the fault plan keys on).
    passes: AtomicU64,
    /// Reload polls attempted (0-based index the fault plan keys on).
    reload_polls: AtomicU64,
    /// Consecutive reload failures; resets on success.
    reload_failures: AtomicU64,
    health: AtomicU8,
    latencies: Mutex<LatencyRing>,
    faults: ServeFaultPlan,
}

/// The request-coalescing serving engine. See the module docs for the
/// queue/fusion/hot-reload/fault contract.
pub struct BatchEngine {
    tx: Mutex<Option<SyncSender<Job>>>,
    inner: Arc<Inner>,
    worker: Mutex<Option<std::thread::JoinHandle<()>>>,
    shed_threshold: u64,
    default_deadline: Duration,
}

impl BatchEngine {
    /// Starts an engine (and its batcher thread) over `sampler`. The
    /// engine imposes [`ServeConfig::precision`] on the sampler — the one
    /// place the reduced-precision tier can be switched on.
    pub fn new(mut sampler: Sampler, config: ServeConfig) -> Self {
        sampler.set_precision(config.precision);
        let inner = Arc::new(Inner {
            sampler: Mutex::new(sampler),
            requests: AtomicU64::new(0),
            batches: AtomicU64::new(0),
            samples: AtomicU64::new(0),
            rejected: AtomicU64::new(0),
            shed: AtomicU64::new(0),
            deadline_expired: AtomicU64::new(0),
            pass_panics: AtomicU64::new(0),
            reloads: AtomicU64::new(0),
            queued: AtomicU64::new(0),
            passes: AtomicU64::new(0),
            reload_polls: AtomicU64::new(0),
            reload_failures: AtomicU64::new(0),
            health: AtomicU8::new(ServeHealth::Ok as u8),
            latencies: Mutex::new(LatencyRing::new(config.latency_window)),
            faults: config.faults.clone(),
        });
        let queue_depth = config.queue_depth.max(1);
        let (tx, rx) = mpsc::sync_channel::<Job>(queue_depth);
        let worker = {
            let inner = Arc::clone(&inner);
            let max_reqs = config.max_fused_requests.max(1);
            let max_rows = config.max_fused_rows.max(1);
            let max_wait = Duration::from_micros(config.max_wait_us);
            std::thread::spawn(move || batcher_loop(rx, inner, max_reqs, max_rows, max_wait))
        };
        let shed_threshold = match config.shed_threshold {
            0 => queue_depth as u64,
            t => (t as u64).min(queue_depth as u64),
        };
        BatchEngine {
            tx: Mutex::new(Some(tx)),
            inner,
            worker: Mutex::new(Some(worker)),
            shed_threshold,
            default_deadline: Duration::from_millis(config.default_deadline_ms.max(1)),
        }
    }

    /// The precision generation passes run at.
    pub fn precision(&self) -> Precision {
        lock_unpoisoned(&self.inner.sampler).precision()
    }

    fn validate(&self, req: &SampleRequest) -> Result<(), ServeError> {
        let sampler = lock_unpoisoned(&self.inner.sampler);
        if let Err(e) = sampler.validate_rows(&req.attribute_rows) {
            self.inner.rejected.fetch_add(1, Ordering::Relaxed);
            return Err(ServeError::Invalid(e));
        }
        Ok(())
    }

    /// Validates and enqueues `req`, returning the channel its response
    /// will arrive on. Blocks while the queue is full (backpressure) —
    /// transports that must never block should use
    /// [`BatchEngine::try_submit`].
    pub fn submit(
        &self,
        req: SampleRequest,
    ) -> Result<Receiver<Result<SampleResponse, ServeError>>, ServeError> {
        self.validate(&req)?;
        let (reply, rx) = mpsc::channel();
        let job = Job { req, reply, enqueued: Instant::now(), deadline: None };
        let tx = lock_unpoisoned(&self.tx).clone();
        let Some(tx) = tx else { return Err(ServeError::Stopped) };
        self.inner.queued.fetch_add(1, Ordering::Relaxed);
        if tx.send(job).is_err() {
            self.inner.queued.fetch_sub(1, Ordering::Relaxed);
            return Err(ServeError::Stopped);
        }
        Ok(rx)
    }

    /// Validates and enqueues `req` **without blocking**: if the queue
    /// occupancy is at or past the shed threshold (or the queue itself is
    /// full), the request is shed with [`ServeError::Overloaded`] and the
    /// `shed` counter ticks. `deadline` (relative to now) rides with the
    /// job and is checked at dequeue.
    pub fn try_submit(
        &self,
        req: SampleRequest,
        deadline: Option<Duration>,
    ) -> Result<Receiver<Result<SampleResponse, ServeError>>, ServeError> {
        self.validate(&req)?;
        if self.inner.queued.load(Ordering::Relaxed) >= self.shed_threshold {
            self.inner.shed.fetch_add(1, Ordering::Relaxed);
            return Err(ServeError::Overloaded);
        }
        let now = Instant::now();
        let (reply, rx) = mpsc::channel();
        let job = Job { req, reply, enqueued: now, deadline: deadline.map(|d| now + d) };
        let tx = lock_unpoisoned(&self.tx).clone();
        let Some(tx) = tx else { return Err(ServeError::Stopped) };
        self.inner.queued.fetch_add(1, Ordering::Relaxed);
        match tx.try_send(job) {
            Ok(()) => Ok(rx),
            Err(mpsc::TrySendError::Full(_)) => {
                self.inner.queued.fetch_sub(1, Ordering::Relaxed);
                self.inner.shed.fetch_add(1, Ordering::Relaxed);
                Err(ServeError::Overloaded)
            }
            Err(mpsc::TrySendError::Disconnected(_)) => {
                self.inner.queued.fetch_sub(1, Ordering::Relaxed);
                Err(ServeError::Stopped)
            }
        }
    }

    fn await_reply(
        &self,
        rx: Receiver<Result<SampleResponse, ServeError>>,
        wait: Duration,
    ) -> Result<SampleResponse, ServeError> {
        match rx.recv_timeout(wait) {
            Ok(result) => result,
            Err(mpsc::RecvTimeoutError::Timeout) => Err(ServeError::DeadlineExceeded),
            Err(mpsc::RecvTimeoutError::Disconnected) => Err(ServeError::Stopped),
        }
    }

    /// Submits `req` (blocking admission) and waits for its response,
    /// bounded by [`ServeConfig::default_deadline_ms`] — never an
    /// infinite hang, even against a wedged batcher.
    pub fn sample_blocking(&self, req: SampleRequest) -> Result<SampleResponse, ServeError> {
        let rx = self.submit(req)?;
        self.await_reply(rx, self.default_deadline)
    }

    /// Submits `req` with admission control (shedding, never blocking)
    /// and waits up to `deadline` (default
    /// [`ServeConfig::default_deadline_ms`]) for its response. The
    /// deadline also rides with the queued job: if it expires before the
    /// batcher dequeues the request, the request is dropped with
    /// [`ServeError::DeadlineExceeded`] instead of wasting a fused-pass
    /// slot.
    pub fn sample_with_deadline(
        &self,
        req: SampleRequest,
        deadline: Option<Duration>,
    ) -> Result<SampleResponse, ServeError> {
        let wait = deadline.unwrap_or(self.default_deadline);
        let rx = self.try_submit(req, deadline)?;
        self.await_reply(rx, wait)
    }

    /// Atomically installs the newest valid release of `family` from
    /// `store`, if it differs from the one currently serving. In-flight
    /// fused passes complete against the release they snapshotted.
    ///
    /// Failures degrade [`BatchEngine::health`] (the previous release
    /// keeps serving); the next success recovers it. A draining engine
    /// never leaves `Draining`.
    pub fn reload<B: Backend>(
        &self,
        store: &ArtifactStore<B>,
        family: &str,
    ) -> Result<ReloadReport, SamplerError> {
        let poll = self.inner.reload_polls.fetch_add(1, Ordering::Relaxed);
        let result = match self.inner.faults.injected_reload_failure(poll) {
            Some(err) => Err(err),
            None => lock_unpoisoned(&self.inner.sampler).reload(store, family),
        };
        match &result {
            Ok(report) => {
                if report.reloaded {
                    self.inner.reloads.fetch_add(1, Ordering::Relaxed);
                }
                self.inner.reload_failures.store(0, Ordering::Relaxed);
                let _ = self.inner.health.compare_exchange(
                    ServeHealth::Degraded as u8,
                    ServeHealth::Ok as u8,
                    Ordering::Relaxed,
                    Ordering::Relaxed,
                );
            }
            Err(_) => {
                self.inner.reload_failures.fetch_add(1, Ordering::Relaxed);
                let _ = self.inner.health.compare_exchange(
                    ServeHealth::Ok as u8,
                    ServeHealth::Degraded as u8,
                    Ordering::Relaxed,
                    Ordering::Relaxed,
                );
            }
        }
        result
    }

    /// Installs a model directly (tests, in-process embedding).
    ///
    /// `reloads` counts **changes of serving release**, matching
    /// [`BatchEngine::reload`]'s `report.reloaded` semantics: installing
    /// over an untagged sampler (the initial install) or re-installing
    /// the identical `(model, seq)` does not inflate the counter.
    pub fn install(&self, model: Arc<DoppelGanger>, seq: Option<u64>) {
        let mut sampler = lock_unpoisoned(&self.inner.sampler);
        let had_release = sampler.loaded_seq().is_some();
        let changed = sampler.loaded_seq() != seq || !Arc::ptr_eq(&sampler.model_arc(), &model);
        sampler.install(model, seq);
        if had_release && changed {
            self.inner.reloads.fetch_add(1, Ordering::Relaxed);
        }
    }

    /// Sequence number of the release currently serving, if any.
    pub fn loaded_seq(&self) -> Option<u64> {
        lock_unpoisoned(&self.inner.sampler).loaded_seq()
    }

    /// Current engine health.
    pub fn health(&self) -> ServeHealth {
        ServeHealth::from_u8(self.inner.health.load(Ordering::Relaxed))
    }

    /// Marks the engine as draining (terminal): heartbeats and health
    /// probes report `"draining"` from here on. Does not itself stop the
    /// batcher — call [`BatchEngine::shutdown`] once in-flight work is
    /// done.
    pub fn begin_drain(&self) {
        self.inner.health.store(ServeHealth::Draining as u8, Ordering::Relaxed);
    }

    /// Consecutive failed reload polls (0 after any success) — the input
    /// to the front end's deterministic backoff.
    pub fn consecutive_reload_failures(&self) -> u64 {
        self.inner.reload_failures.load(Ordering::Relaxed)
    }

    /// A point-in-time snapshot of the engine's counters.
    pub fn stats(&self) -> ServeStats {
        let (lat, window, held) = {
            let ring = lock_unpoisoned(&self.inner.latencies);
            (ring.sorted(), ring.capacity(), ring.len())
        };
        let (plan_hits, plan_misses) = lock_unpoisoned(&self.inner.sampler).plan_stats();
        ServeStats {
            requests: self.inner.requests.load(Ordering::Relaxed),
            batches: self.inner.batches.load(Ordering::Relaxed),
            samples: self.inner.samples.load(Ordering::Relaxed),
            rejected: self.inner.rejected.load(Ordering::Relaxed),
            shed: self.inner.shed.load(Ordering::Relaxed),
            deadline_expired: self.inner.deadline_expired.load(Ordering::Relaxed),
            pass_panics: self.inner.pass_panics.load(Ordering::Relaxed),
            reloads: self.inner.reloads.load(Ordering::Relaxed),
            p50_ms: percentile(&lat, 0.50),
            p99_ms: percentile(&lat, 0.99),
            precision: self.precision().name().to_string(),
            health: self.health().name().to_string(),
            latency_window: window,
            latency_samples: held,
            plan_cache_hits: plan_hits,
            plan_cache_misses: plan_misses,
        }
    }

    /// Stops accepting requests, drains the queue, and joins the batcher.
    pub fn shutdown(&self) {
        drop(lock_unpoisoned(&self.tx).take());
        if let Some(handle) = lock_unpoisoned(&self.worker).take() {
            let _ = handle.join();
        }
    }
}

impl Drop for BatchEngine {
    fn drop(&mut self) {
        self.shutdown();
    }
}

fn panic_message(payload: &(dyn std::any::Any + Send)) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "non-string panic payload".to_string()
    }
}

fn batcher_loop(rx: Receiver<Job>, inner: Arc<Inner>, max_reqs: usize, max_rows: usize, max_wait: Duration) {
    while let Ok(first) = rx.recv() {
        inner.queued.fetch_sub(1, Ordering::Relaxed);
        // The gather window opens when the first request of a pass arrives:
        // with `max_wait` zero the loop only drains what is already queued
        // (the minimum-latency mode); otherwise it blocks up to the
        // remaining window for stragglers to widen the fused pass.
        //
        // Single-client fast path: when nothing else is queued behind the
        // first request, holding the window open can only add latency — a
        // lone client pays `max_wait` for a fusion that never happens. The
        // `queued` gauge is incremented before the channel send, so a
        // racing submitter is seen here at worst one pass early (it rides
        // the next pass at minimum latency, exactly as if it had arrived a
        // moment later).
        let others_queued = inner.queued.load(Ordering::Relaxed) > 0;
        let deadline = (max_wait > Duration::ZERO && others_queued).then(|| Instant::now() + max_wait);
        let mut jobs = vec![first];
        let mut rows = jobs[0].req.rows();
        while jobs.len() < max_reqs && rows < max_rows {
            match rx.try_recv() {
                Ok(job) => {
                    inner.queued.fetch_sub(1, Ordering::Relaxed);
                    rows += job.req.rows();
                    jobs.push(job);
                }
                Err(mpsc::TryRecvError::Disconnected) => break,
                Err(mpsc::TryRecvError::Empty) => {
                    let Some(deadline) = deadline else { break };
                    let now = Instant::now();
                    if now >= deadline {
                        break;
                    }
                    match rx.recv_timeout(deadline - now) {
                        Ok(job) => {
                            inner.queued.fetch_sub(1, Ordering::Relaxed);
                            rows += job.req.rows();
                            jobs.push(job);
                        }
                        // Window expired or the engine is shutting down:
                        // serve what was gathered either way.
                        Err(_) => break,
                    }
                }
            }
        }
        // Client deadlines are enforced at dequeue: an expired request gets
        // a structured reply and never occupies a fused-pass slot.
        let now = Instant::now();
        let mut live = Vec::with_capacity(jobs.len());
        for job in jobs {
            if job.deadline.is_some_and(|d| now >= d) {
                inner.deadline_expired.fetch_add(1, Ordering::Relaxed);
                let _ = job.reply.send(Err(ServeError::DeadlineExceeded));
            } else {
                live.push(job);
            }
        }
        if live.is_empty() {
            continue;
        }
        // ONE model snapshot per fused pass: a concurrent reload swaps the
        // engine's sampler but cannot touch this pass.
        let pass = inner.passes.fetch_add(1, Ordering::Relaxed);
        let snapshot = lock_unpoisoned(&inner.sampler).clone();
        let seq = snapshot.loaded_seq();
        let precision = snapshot.precision();
        let reqs: Vec<SampleRequest> = live.iter().map(|j| j.req.clone()).collect();
        // Panic isolation: a pass that panics (a generation bug, or an
        // injected fault) converts to per-request errors; the batcher and
        // every later pass keep serving.
        let outs = std::panic::catch_unwind(AssertUnwindSafe(|| {
            inner.faults.apply_pass(pass);
            snapshot.sample_fused(&reqs)
        }));
        match outs {
            Ok(outs) => {
                inner.batches.fetch_add(1, Ordering::Relaxed);
                for (job, objects) in live.into_iter().zip(outs) {
                    let latency_ms = job.enqueued.elapsed().as_secs_f64() * 1e3;
                    inner.requests.fetch_add(1, Ordering::Relaxed);
                    inner.samples.fetch_add(objects.len() as u64, Ordering::Relaxed);
                    lock_unpoisoned(&inner.latencies).push(latency_ms);
                    // A caller that gave up on its receiver is not an
                    // engine error.
                    let _ = job.reply.send(Ok(SampleResponse { seq, objects, latency_ms, precision }));
                }
            }
            Err(payload) => {
                inner.pass_panics.fetch_add(1, Ordering::Relaxed);
                let msg = panic_message(payload.as_ref());
                for job in live {
                    let _ = job.reply.send(Err(ServeError::PassPanicked(msg.clone())));
                }
            }
        }
    }
}

/// Nearest-rank percentile of an ascending-sorted slice (0.0 for empty).
pub fn percentile(sorted: &[f64], q: f64) -> f64 {
    if sorted.is_empty() {
        return 0.0;
    }
    let idx = ((sorted.len() as f64 * q).ceil() as usize).clamp(1, sorted.len()) - 1;
    sorted[idx]
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::DgConfig;
    use dg_data::Value;
    use dg_datasets::sine::{self, SineConfig};
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn tiny_model(seed: u64) -> DoppelGanger {
        let mut rng = StdRng::seed_from_u64(seed);
        let cfg = SineConfig { num_objects: 20, length: 16, periods: vec![4, 8], noise_sigma: 0.05 };
        let data = sine::generate(&cfg, &mut rng);
        let mut dg_cfg = DgConfig::quick().with_recommended_s(16);
        dg_cfg.attr_hidden = 8;
        dg_cfg.lstm_hidden = 8;
        dg_cfg.head_hidden = 8;
        dg_cfg.batch_size = 4;
        DoppelGanger::new(&data, dg_cfg, &mut rng)
    }

    fn req(n: usize, seed: u64) -> SampleRequest {
        SampleRequest { attribute_rows: (0..n).map(|k| vec![Value::Cat(k % 2)]).collect(), seed }
    }

    #[test]
    fn engine_serves_requests_identically_to_a_direct_sampler_call() {
        let model = tiny_model(50);
        let sampler = Sampler::new(model);
        let engine = BatchEngine::new(sampler.clone(), ServeConfig::default());
        let r = req(5, 99);
        let served = engine.sample_blocking(r.clone()).unwrap();
        let direct = sampler.sample_threaded(&r, 1);
        assert_eq!(
            serde_json::to_string(&served.objects).unwrap(),
            serde_json::to_string(&direct).unwrap(),
            "engine-served bytes must match a direct sequential call"
        );
        let stats = engine.stats();
        assert_eq!((stats.requests, stats.samples), (1, 5));
        assert!(stats.batches >= 1);
        assert_eq!(stats.health, "ok");
    }

    #[test]
    fn concurrent_submissions_all_complete_and_counters_add_up() {
        let engine = Arc::new(BatchEngine::new(Sampler::new(tiny_model(51)), ServeConfig::default()));
        let handles: Vec<_> = (0..8)
            .map(|i| {
                let engine = Arc::clone(&engine);
                std::thread::spawn(move || engine.sample_blocking(req(3, 1000 + i)).unwrap())
            })
            .collect();
        for h in handles {
            let resp = h.join().unwrap();
            assert_eq!(resp.objects.len(), 3);
            assert!(resp.latency_ms >= 0.0);
        }
        let stats = engine.stats();
        assert_eq!((stats.requests, stats.samples), (8, 24));
        assert!(stats.batches <= 8, "coalescing can only reduce pass count");
        assert!(stats.p99_ms >= stats.p50_ms);
    }

    #[test]
    fn invalid_requests_are_rejected_before_the_queue() {
        let engine = BatchEngine::new(Sampler::new(tiny_model(52)), ServeConfig::default());
        let bad = SampleRequest { attribute_rows: vec![vec![Value::Cat(0), Value::Cat(1)]], seed: 1 };
        assert!(matches!(engine.submit(bad), Err(ServeError::Invalid(_))));
        assert_eq!(engine.stats().rejected, 1);
        // The engine still serves after a rejection.
        assert_eq!(engine.sample_blocking(req(1, 2)).unwrap().objects.len(), 1);
    }

    #[test]
    fn install_swaps_the_model_without_disturbing_request_purity() {
        let m1 = tiny_model(53);
        let m2 = tiny_model(54);
        let engine = BatchEngine::new(Sampler::new(m1), ServeConfig::default());
        let r = req(4, 7);
        let before = engine.sample_blocking(r.clone()).unwrap();
        engine.install(Arc::new(m2.clone()), Some(2));
        let after = engine.sample_blocking(r.clone()).unwrap();
        assert_eq!(after.seq, Some(2));
        // Same request, new release: must match a direct call against m2.
        let direct = Sampler::new(m2).sample_threaded(&r, 1);
        assert_eq!(serde_json::to_string(&after.objects).unwrap(), serde_json::to_string(&direct).unwrap());
        // And the pre-reload response was a pure function of the old model.
        assert_ne!(
            serde_json::to_string(&before.objects).unwrap(),
            serde_json::to_string(&after.objects).unwrap()
        );
    }

    #[test]
    fn install_counts_changes_of_release_not_the_initial_install() {
        let engine = BatchEngine::new(Sampler::new(tiny_model(53)), ServeConfig::default());
        assert_eq!(engine.stats().reloads, 0);
        let m = Arc::new(tiny_model(54));
        // Initial tagged install on an untagged sampler: not a reload.
        engine.install(Arc::clone(&m), Some(1));
        assert_eq!(engine.stats().reloads, 0, "initial install must not inflate reloads");
        // Re-installing the identical release: still not a change.
        engine.install(Arc::clone(&m), Some(1));
        assert_eq!(engine.stats().reloads, 0, "identical re-install must not inflate reloads");
        // A different seq of a different model: a real change.
        engine.install(Arc::new(tiny_model(55)), Some(2));
        assert_eq!(engine.stats().reloads, 1);
        // Same model object under a new seq is still a release change.
        engine.install(Arc::clone(&m), Some(3));
        assert_eq!(engine.stats().reloads, 2);
    }

    #[test]
    fn unbatched_mode_serves_one_request_per_pass() {
        let cfg = ServeConfig { max_fused_requests: 1, ..ServeConfig::default() };
        let engine = Arc::new(BatchEngine::new(Sampler::new(tiny_model(55)), cfg));
        let handles: Vec<_> = (0..4)
            .map(|i| {
                let engine = Arc::clone(&engine);
                std::thread::spawn(move || engine.sample_blocking(req(2, i)).unwrap())
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
        let stats = engine.stats();
        assert_eq!(stats.batches, 4, "max_fused_requests=1 must never coalesce");
    }

    #[test]
    fn shutdown_rejects_new_requests() {
        let engine = BatchEngine::new(Sampler::new(tiny_model(56)), ServeConfig::default());
        engine.shutdown();
        assert_eq!(engine.submit(req(1, 1)).unwrap_err(), ServeError::Stopped);
        assert_eq!(engine.try_submit(req(1, 1), None).unwrap_err(), ServeError::Stopped);
    }

    #[test]
    fn try_submit_sheds_with_overloaded_instead_of_blocking() {
        // Pass 0 stalls long enough for the submission storm below to pile
        // into a deliberately tiny queue; blocking `submit` would wedge
        // here, `try_submit` must shed.
        let cfg = ServeConfig {
            queue_depth: 2,
            max_fused_requests: 1,
            faults: ServeFaultPlan { stall_on_pass: Some(0), stall_ms: 300, ..ServeFaultPlan::default() },
            ..ServeConfig::default()
        };
        let engine = BatchEngine::new(Sampler::new(tiny_model(57)), cfg);
        // Wedge the batcher in pass 0.
        let first = engine.try_submit(req(1, 0), None).unwrap();
        // Give the batcher time to dequeue the wedge request.
        std::thread::sleep(Duration::from_millis(50));
        let mut accepted = Vec::new();
        let mut shed = 0u64;
        for i in 0..8u64 {
            match engine.try_submit(req(1, 10 + i), None) {
                Ok(rx) => accepted.push(rx),
                Err(ServeError::Overloaded) => shed += 1,
                Err(other) => panic!("unexpected admission error: {other:?}"),
            }
        }
        assert!(shed > 0, "a full queue must shed");
        assert_eq!(engine.stats().shed, shed);
        // Everything admitted (and the wedged request) still completes.
        assert!(engine.await_reply(first, Duration::from_secs(10)).is_ok());
        for rx in accepted {
            assert!(engine.await_reply(rx, Duration::from_secs(10)).is_ok());
        }
    }

    #[test]
    fn expired_client_deadlines_are_dropped_at_dequeue_without_a_pass_slot() {
        // Pass 0 stalls; requests queued behind it with a 1ms deadline must
        // come back `deadline exceeded` without ever being generated.
        let cfg = ServeConfig {
            max_fused_requests: 1,
            faults: ServeFaultPlan { stall_on_pass: Some(0), stall_ms: 250, ..ServeFaultPlan::default() },
            ..ServeConfig::default()
        };
        let engine = BatchEngine::new(Sampler::new(tiny_model(58)), cfg);
        let wedge = engine.try_submit(req(1, 0), None).unwrap();
        std::thread::sleep(Duration::from_millis(50));
        let doomed = engine
            .sample_with_deadline(req(1, 1), Some(Duration::from_millis(1)))
            .expect_err("a 1ms deadline behind a 250ms stall cannot be met");
        assert_eq!(doomed, ServeError::DeadlineExceeded);
        assert!(engine.await_reply(wedge, Duration::from_secs(10)).is_ok());
        // Wait for the batcher to reach (and drop) the expired job.
        let deadline = Instant::now() + Duration::from_secs(10);
        while engine.stats().deadline_expired == 0 && Instant::now() < deadline {
            std::thread::sleep(Duration::from_millis(10));
        }
        let stats = engine.stats();
        assert_eq!(stats.deadline_expired, 1, "the expired job must be dropped at dequeue");
        // Only the wedge request was actually generated.
        assert_eq!(stats.requests, 1);
    }

    #[test]
    fn an_injected_pass_panic_is_isolated_and_the_engine_keeps_serving() {
        let model = tiny_model(59);
        let cfg = ServeConfig {
            max_fused_requests: 1,
            faults: ServeFaultPlan { panic_on_pass: Some(0), ..ServeFaultPlan::default() },
            ..ServeConfig::default()
        };
        let engine = BatchEngine::new(Sampler::new(model.clone()), cfg);
        let poisoned = engine.sample_blocking(req(2, 7)).unwrap_err();
        assert!(matches!(poisoned, ServeError::PassPanicked(_)), "{poisoned:?}");
        // The batcher survived: the next pass serves, byte-identical to a
        // direct sampler call, and stats remain reachable (no poisoned
        // mutex cascade).
        let r = req(3, 8);
        let served = engine.sample_blocking(r.clone()).unwrap();
        let direct = Sampler::new(model).sample_threaded(&r, 1);
        assert_eq!(
            serde_json::to_string(&served.objects).unwrap(),
            serde_json::to_string(&direct).unwrap(),
            "post-panic responses must still be byte-identical to ground truth"
        );
        let stats = engine.stats();
        assert_eq!(stats.pass_panics, 1);
        assert_eq!(stats.requests, 1, "the panicked request must not count as served");
        assert_eq!(stats.health, "ok", "an isolated pass panic is not a health transition");
    }

    #[test]
    fn drain_is_terminal_and_visible_in_stats() {
        let engine = BatchEngine::new(Sampler::new(tiny_model(60)), ServeConfig::default());
        assert_eq!(engine.health(), ServeHealth::Ok);
        engine.begin_drain();
        assert_eq!(engine.health(), ServeHealth::Draining);
        assert_eq!(engine.stats().health, "draining");
        // Draining does not refuse in-flight work by itself.
        assert!(engine.sample_blocking(req(1, 1)).is_ok());
    }

    #[test]
    fn fault_plan_parses_round_trips_and_rejects_unknown_keys() {
        assert!(ServeFaultPlan::parse("").unwrap().is_inert());
        let plan = ServeFaultPlan::parse("panic_on_pass=2, stall_on_pass=1, stall_ms=40").unwrap();
        assert_eq!(plan.panic_on_pass, Some(2));
        assert_eq!(plan.stall_on_pass, Some(1));
        assert_eq!(plan.stall_ms, 40);
        assert!(!plan.is_inert());
        let plan = ServeFaultPlan::parse("reload_fail_on_poll=0,reload_fail_from=3").unwrap();
        assert_eq!(plan.reload_fail_on_poll, Some(0));
        assert_eq!(plan.reload_fail_from, Some(3));
        assert!(ServeFaultPlan::parse("panic_on_pass=x").is_err());
        assert!(ServeFaultPlan::parse("frobnicate=1").is_err());
        assert!(ServeFaultPlan::parse("panic_on_pass").is_err());
        // Seeded plans are deterministic and land inside the horizon.
        let a = ServeFaultPlan::seeded(7, 5);
        assert_eq!(a, ServeFaultPlan::seeded(7, 5));
        assert!(a.panic_on_pass.unwrap() < 5 && a.reload_fail_on_poll.unwrap() < 5);
        assert_ne!(a, ServeFaultPlan::seeded(8, 5));
    }

    #[test]
    fn percentile_is_nearest_rank() {
        assert_eq!(percentile(&[], 0.5), 0.0);
        assert_eq!(percentile(&[3.0], 0.99), 3.0);
        let v: Vec<f64> = (1..=100).map(|i| i as f64).collect();
        assert_eq!(percentile(&v, 0.50), 50.0);
        assert_eq!(percentile(&v, 0.99), 99.0);
    }

    #[test]
    fn latency_ring_keeps_exactly_the_most_recent_window() {
        let mut ring = LatencyRing::new(8);
        assert!(ring.is_empty());
        // Overfill 4x: the ring must retain exactly the last 8 pushes.
        for i in 0..32 {
            ring.push(i as f64);
        }
        assert_eq!((ring.len(), ring.capacity()), (8, 8));
        let sorted = ring.sorted();
        assert_eq!(sorted, (24..32).map(|i| i as f64).collect::<Vec<_>>());
        // Ring percentiles == exact nearest-rank over the last-window
        // slice of the full history.
        let mut exact: Vec<f64> = (24..32).map(|i| i as f64).collect();
        exact.sort_by(f64::total_cmp);
        assert_eq!(percentile(&sorted, 0.50), percentile(&exact, 0.50));
        assert_eq!(percentile(&sorted, 0.99), percentile(&exact, 0.99));
    }

    #[test]
    fn latency_ring_drops_non_finite_observations_instead_of_poisoning_stats() {
        let mut ring = LatencyRing::new(4);
        ring.push(f64::NAN);
        ring.push(1.0);
        ring.push(f64::INFINITY);
        ring.push(2.0);
        ring.push(f64::NEG_INFINITY);
        assert_eq!(ring.sorted(), vec![1.0, 2.0]);
        // sorted() itself must survive arbitrary f64s if one ever got in.
        let sorted = ring.sorted();
        assert!(percentile(&sorted, 0.99).is_finite());
    }

    #[test]
    fn soak_latency_memory_stays_bounded_across_many_times_the_window() {
        // 10x+ the window of sequential requests: the engine must retain at
        // most `latency_window` observations and report sane percentiles.
        let cfg = ServeConfig { latency_window: 16, ..ServeConfig::default() };
        let engine = BatchEngine::new(Sampler::new(tiny_model(57)), cfg);
        for i in 0..200u64 {
            let resp = engine.sample_blocking(req(1, i)).unwrap();
            assert_eq!(resp.objects.len(), 1);
        }
        let stats = engine.stats();
        assert_eq!(stats.requests, 200);
        assert_eq!(stats.latency_window, 16);
        assert_eq!(stats.latency_samples, 16, "ring must cap at the window");
        assert!(stats.p50_ms.is_finite() && stats.p50_ms > 0.0);
        assert!(stats.p99_ms >= stats.p50_ms);
    }

    #[test]
    fn gather_window_fuses_a_steady_trickle_into_fewer_passes() {
        // A generous window: requests submitted one-by-one from separate
        // threads land inside a single gather window with high probability.
        // Pass 0 is stalled so the trickle piles up behind it — the
        // single-client fast path would otherwise race the first request
        // through alone before any straggler is queued.
        let faults = ServeFaultPlan { stall_on_pass: Some(0), stall_ms: 80, ..Default::default() };
        let cfg = ServeConfig { max_wait_us: 200_000, faults, ..ServeConfig::default() };
        let engine = Arc::new(BatchEngine::new(Sampler::new(tiny_model(58)), cfg));
        let handles: Vec<_> = (0..6)
            .map(|i| {
                let engine = Arc::clone(&engine);
                std::thread::spawn(move || {
                    std::thread::sleep(std::time::Duration::from_millis(5 * i));
                    engine.sample_blocking(req(2, 100 + i)).unwrap()
                })
            })
            .collect();
        for h in handles {
            assert_eq!(h.join().unwrap().objects.len(), 2);
        }
        let stats = engine.stats();
        assert_eq!((stats.requests, stats.samples), (6, 12));
        assert!(
            stats.batches < 6,
            "a 200ms gather window must coalesce a 5ms-spaced trickle (got {} passes)",
            stats.batches
        );
    }

    #[test]
    fn lone_request_skips_the_gather_window() {
        // With a huge gather window configured, a single client must still
        // be served at minimum latency: nothing else is queued, so the
        // batcher has nothing to wait for.
        let cfg = ServeConfig { max_wait_us: 2_000_000, ..ServeConfig::default() };
        let engine = BatchEngine::new(Sampler::new(tiny_model(60)), cfg);
        let start = Instant::now();
        let resp = engine.sample_blocking(req(1, 7)).unwrap();
        let elapsed = start.elapsed();
        assert_eq!(resp.objects.len(), 1);
        assert!(
            elapsed < Duration::from_millis(1_000),
            "a lone request must not sit out the 2s gather window (took {elapsed:?})"
        );
    }

    #[test]
    fn stats_expose_plan_cache_hits_and_misses() {
        let engine = BatchEngine::new(Sampler::new(tiny_model(61)), ServeConfig::default());
        let r = req(3, 11);
        engine.sample_blocking(r.clone()).unwrap();
        let after_first = engine.stats();
        assert!(after_first.plan_cache_misses >= 1, "first pass of a shape records a plan");
        engine.sample_blocking(r).unwrap();
        let after_second = engine.stats();
        assert!(
            after_second.plan_cache_hits > after_first.plan_cache_hits,
            "a repeat same-shape pass must replay the cached plan (stats: {after_second:?})"
        );
        // The counters ride the JSON stats surface the CLI and CI consume.
        let json = serde_json::to_string(&after_second).unwrap();
        assert!(json.contains("\"plan_cache_hits\"") && json.contains("\"plan_cache_misses\""));
    }

    #[test]
    fn bf16_engine_serves_the_reduced_precision_tier_and_echoes_it() {
        let model = tiny_model(59);
        let cfg = ServeConfig { precision: Precision::Bf16, ..ServeConfig::default() };
        let engine = BatchEngine::new(Sampler::new(model.clone()), cfg);
        assert_eq!(engine.precision(), Precision::Bf16);
        let r = req(5, 41);
        let served = engine.sample_blocking(r.clone()).unwrap();
        assert_eq!(served.precision, Precision::Bf16);
        assert_eq!(engine.stats().precision, "bf16");
        // Served bytes match a direct bf16 sampler call, not the f32 tier.
        let direct_bf16 = Sampler::new(model.clone()).with_precision(Precision::Bf16).sample_threaded(&r, 1);
        let direct_f32 = Sampler::new(model).sample_threaded(&r, 1);
        assert_eq!(
            serde_json::to_string(&served.objects).unwrap(),
            serde_json::to_string(&direct_bf16).unwrap()
        );
        assert_ne!(
            serde_json::to_string(&served.objects).unwrap(),
            serde_json::to_string(&direct_f32).unwrap()
        );
    }
}
