//! WGAN-GP training loop for DoppelGANger (Eq. 2 of the paper).
//!
//! Both discriminators are trained on the combined loss
//! `L1 + α·L2`, each term being a gradient-penalized Wasserstein loss; the
//! generator maximizes both critics' scores on generated samples. Training
//! alternates `d_steps_per_g` discriminator updates with one generator
//! update, using Adam on both sides (Appendix B).
//!
//! An optional [`crate::dpsgd::DpConfig`] switches the
//! discriminator update to DP-SGD (per-sample clipping + Gaussian noise),
//! reproducing the paper's differential-privacy experiments (§5.3.1).
//!
//! ## Threading and determinism
//!
//! The per-sample DP-SGD loop — the slowest part of the paper's §5.3.1
//! experiments, since every sample runs its own forward/backward pass — fans
//! out across the persistent `dg-nn` worker pool
//! ([`dg_nn::parallel::run_indexed`]; no per-step thread spawns).
//! Reproducibility is preserved regardless of thread count by (a) drawing
//! one RNG seed per sample from the step RNG *before* the fan-out
//! ([`crate::dpsgd::split_seeds`]), (b) giving each sample-chunk its own
//! `StdRng` built from those seeds plus a dedicated workspace, and (c)
//! merging the clipped per-sample gradients serially in sample-index order
//! after the dispatch joins. The worker count honors the `DG_NUM_THREADS`
//! override (see [`dg_nn::parallel`]).

use crate::dpsgd::{split_seeds, DpConfig};
use crate::model::DoppelGanger;
use crate::telemetry::{
    DivergencePolicy, FitOutcome, FitReport, RunHeader, RunOutcome, TrainError, TrainMonitor,
};
use dg_data::{BatchIter, EncodedDataset};
use dg_nn::graph::Graph;
use dg_nn::optim::Adam;
use dg_nn::parallel::num_threads;
use dg_nn::params::GradMap;
use dg_nn::penalty::gradient_penalty;
use dg_nn::tensor::Tensor;
use dg_nn::workspace::{Workspace, WorkspaceStats};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use rand_distr::{Distribution, Normal};
use std::time::Instant;

/// Per-iteration training telemetry.
#[derive(Debug, Clone, Copy, Default)]
pub struct StepMetrics {
    /// Iteration number (0-based).
    pub iteration: usize,
    /// Discriminator loss (lower = critic winning).
    pub d_loss: f32,
    /// Generator loss (`-E[D(G(z))] - α·E[D2(..)]`).
    pub g_loss: f32,
    /// Gradient-penalty value of the primary critic.
    pub gp: f32,
    /// Estimated Wasserstein distance (`E[D(real)] - E[D(fake)]`).
    pub wasserstein: f32,
    /// Wall time of the iteration's discriminator updates (includes
    /// `gen_ms`, since each critic step generates its own fake batch).
    pub d_ms: f64,
    /// Wall time of the generator update.
    pub g_ms: f64,
    /// Wall time spent generating fake batches inside the discriminator
    /// updates.
    pub gen_ms: f64,
}

/// Per-sample result of a DP-SGD forward/backward pass.
struct SampleGrad {
    loss: f32,
    gp: f32,
    w: f32,
    grads: GradMap,
}

/// Trains a [`DoppelGanger`] model.
pub struct Trainer {
    /// The model being trained.
    pub model: DoppelGanger,
    d_opt: Adam,
    g_opt: Adam,
    dp: Option<DpConfig>,
    /// Number of discriminator updates performed (for DP accounting).
    pub d_updates: usize,
    /// Minibatch iteration state, kept across `fit` calls (and through
    /// checkpoints) so interrupted training resumes the exact batch sequence.
    batches: Option<BatchIter>,
    /// Buffer pool shared by consecutive training-step graphs.
    ws: Workspace,
    /// Per-worker buffer pools for the DP-SGD fan-out, pre-split like the
    /// per-sample RNG seeds so workers never share mutable state.
    dp_workspaces: Vec<Workspace>,
    /// Wall time of the most recent fake-batch generation inside a
    /// discriminator step (telemetry only — never feeds back into training).
    last_gen_ms: f64,
}

impl Trainer {
    /// Creates a trainer with Adam optimizers configured from the model.
    pub fn new(model: DoppelGanger) -> Self {
        let c = &model.config;
        let d_opt = Adam::with_betas(c.d_lr, c.beta1, c.beta2);
        let g_opt = Adam::with_betas(c.g_lr, c.beta1, c.beta2);
        Trainer {
            model,
            d_opt,
            g_opt,
            dp: None,
            d_updates: 0,
            batches: None,
            ws: Workspace::new(),
            dp_workspaces: Vec::new(),
            last_gen_ms: 0.0,
        }
    }

    /// Enables or disables workspace buffer pooling for all training-step
    /// graphs. Pooling is on by default; disabling it restores the
    /// fresh-allocation-per-step behavior (the determinism reference used by
    /// tests and allocation benchmarks). Either way the computed parameters
    /// are bitwise identical.
    pub fn set_buffer_pooling(&mut self, enabled: bool) {
        self.ws = if enabled { Workspace::new() } else { Workspace::unpooled() };
        self.dp_workspaces.clear();
    }

    /// Buffer-pool usage counters of the main step workspace.
    pub fn workspace_stats(&self) -> WorkspaceStats {
        self.ws.stats()
    }

    /// Enables DP-SGD on the discriminator updates.
    pub fn with_dp(mut self, dp: DpConfig) -> Self {
        self.dp = Some(dp);
        self
    }

    /// Enables or disables DP-SGD in place (checkpoint resume).
    pub fn set_dp(&mut self, dp: Option<DpConfig>) {
        self.dp = dp;
    }

    /// The active DP-SGD configuration, if any.
    pub fn dp_config(&self) -> Option<DpConfig> {
        self.dp
    }

    /// Consumes the trainer, returning the trained model.
    pub fn into_model(self) -> DoppelGanger {
        self.model
    }

    /// Discriminator-side optimizer state (for checkpointing).
    pub fn d_opt_state(&self) -> &Adam {
        &self.d_opt
    }

    /// Generator-side optimizer state (for checkpointing).
    pub fn g_opt_state(&self) -> &Adam {
        &self.g_opt
    }

    /// Restores optimizer state and the update counter (checkpoint resume).
    pub fn restore_opt_state(&mut self, d_opt: Adam, g_opt: Adam, d_updates: usize) {
        self.d_opt = d_opt;
        self.g_opt = g_opt;
        self.d_updates = d_updates;
    }

    /// Current minibatch iteration state, if [`Trainer::fit`] has run
    /// (for checkpointing).
    pub fn batch_state(&self) -> Option<&BatchIter> {
        self.batches.as_ref()
    }

    /// Restores the minibatch iteration state (checkpoint resume). Passing
    /// `None` makes the next [`Trainer::fit`] start a fresh epoch schedule.
    pub fn restore_batch_state(&mut self, batches: Option<BatchIter>) {
        self.batches = batches;
    }

    /// Runs `iterations` generator updates (each preceded by
    /// `d_steps_per_g` discriminator updates), invoking `callback` after
    /// every iteration.
    ///
    /// The reported `d_loss`/`gp`/`wasserstein` are averaged over the
    /// iteration's critic updates (an earlier version kept only the last
    /// critic step's values, which made telemetry noisy for
    /// `d_steps_per_g > 1`). Batch iteration state persists across calls —
    /// a second `fit` continues the current epoch rather than restarting it.
    ///
    /// Equivalent to [`Trainer::fit_monitored`] with a disabled monitor;
    /// with no watchdog attached a fit cannot fail, so this path stays
    /// infallible.
    pub fn fit<R: Rng + ?Sized>(
        &mut self,
        data: &EncodedDataset,
        iterations: usize,
        rng: &mut R,
        callback: impl FnMut(&StepMetrics),
    ) {
        self.fit_monitored(data, iterations, rng, &mut TrainMonitor::disabled(), callback)
            .expect("a disabled monitor has no watchdog, so fit cannot fail");
    }

    /// [`Trainer::fit`] with run-log, watchdog, and periodic-checkpoint
    /// support threaded through a [`TrainMonitor`].
    ///
    /// Per iteration, after the usual critic + generator updates and the
    /// `callback`, the monitor (a) logs an iteration event, (b) runs the
    /// watchdog over the losses (every iteration) and the parameter store
    /// (every [`WatchdogConfig`](crate::telemetry::WatchdogConfig)
    /// `check_every` iterations), and (c) on healthy iterations takes
    /// rollback snapshots and periodic checkpoints when due.
    ///
    /// On a watchdog detection the configured [`DivergencePolicy`] decides
    /// the outcome:
    ///
    /// * `Warn` — training continues; the report's outcome is
    ///   [`FitOutcome::DivergedWarned`].
    /// * `Abort` — returns [`TrainError::Diverged`]; the trainer keeps its
    ///   (non-finite) state for post-mortems, and a checkpoint of it still
    ///   serializes losslessly (see [`crate::checkpoint::Checkpoint::to_json`]).
    /// * `RollbackToCheckpoint` — the trainer is restored to the last
    ///   healthy snapshot and the run stops early with
    ///   [`FitOutcome::RolledBack`]; with no snapshot yet, behaves like
    ///   `Abort`.
    ///
    /// Monitoring adds no RNG draws, so a monitored run's parameter
    /// trajectory is bitwise identical to a plain [`Trainer::fit`].
    pub fn fit_monitored<R: Rng + ?Sized>(
        &mut self,
        data: &EncodedDataset,
        iterations: usize,
        rng: &mut R,
        monitor: &mut TrainMonitor,
        mut callback: impl FnMut(&StepMetrics),
    ) -> Result<FitReport, TrainError> {
        let n = data.num_samples();
        let batch = self.model.config.batch_size;
        let stale =
            self.batches.as_ref().is_none_or(|b| b.num_samples() != n || b.batch_size() != batch.min(n));
        if stale {
            self.batches = Some(BatchIter::new(n, batch));
        }
        let d_steps = self.model.config.d_steps_per_g.max(1);
        let started = Instant::now();
        monitor.emit_header(|label, seed| RunHeader {
            label,
            seed,
            iterations,
            num_samples: n,
            batch_size: batch.min(n),
            d_steps_per_g: d_steps,
            threads: num_threads(),
            dp: self.dp.is_some(),
        });
        for it in 0..iterations {
            let mut m = StepMetrics { iteration: it, ..Default::default() };
            let d_started = Instant::now();
            for _ in 0..d_steps {
                let idx = self.batches.as_mut().expect("initialized above").next_batch(rng).to_vec();
                let (d_loss, gp, w) = if self.dp.is_some() {
                    self.d_step_dp(data, &idx, rng)
                } else {
                    self.d_step(data, &idx, rng)
                };
                m.d_loss += d_loss;
                m.gp += gp;
                m.wasserstein += w;
                m.gen_ms += self.last_gen_ms;
            }
            m.d_ms = d_started.elapsed().as_secs_f64() * 1e3;
            let inv = 1.0 / d_steps as f32;
            m.d_loss *= inv;
            m.gp *= inv;
            m.wasserstein *= inv;
            let g_batch = self.batches.as_ref().expect("initialized above").batch_size();
            let g_started = Instant::now();
            m.g_loss = self.g_step(g_batch, rng);
            m.g_ms = g_started.elapsed().as_secs_f64() * 1e3;
            callback(&m);
            monitor.emit_iteration(&m);

            let losses =
                [("d_loss", m.d_loss), ("g_loss", m.g_loss), ("gp", m.gp), ("wasserstein", m.wasserstein)];
            if let Some((detail, action)) = monitor.watchdog_inspect(it, &losses, &self.model.store) {
                match action {
                    DivergencePolicy::Warn => {}
                    DivergencePolicy::Abort => {
                        monitor.emit_end(it + 1, started, RunOutcome::Aborted);
                        return Err(TrainError::Diverged { iteration: it, detail });
                    }
                    DivergencePolicy::RollbackToCheckpoint => match monitor.take_rollback_snapshot() {
                        Some(ck) => {
                            let restored_d_updates = ck.d_updates;
                            self.restore(ck);
                            monitor.emit_end(it + 1, started, RunOutcome::RolledBack);
                            return Ok(FitReport {
                                iterations_run: it + 1,
                                outcome: FitOutcome::RolledBack { detected_at: it, restored_d_updates },
                            });
                        }
                        None => {
                            monitor.emit_end(it + 1, started, RunOutcome::Aborted);
                            return Err(TrainError::Diverged { iteration: it, detail });
                        }
                    },
                }
            } else {
                // Healthy iteration: service rollback snapshots and periodic
                // checkpoints, sharing one snapshot when both are due.
                let wants_rollback = monitor.wants_rollback_snapshot(it);
                let file_due = monitor.checkpoint_due(it);
                if wants_rollback || file_due {
                    let ck = self.checkpoint();
                    if file_due {
                        if let Err(e) = monitor.sink_checkpoint(it, &ck) {
                            monitor.emit_end(it + 1, started, RunOutcome::Aborted);
                            return Err(e);
                        }
                    }
                    if wants_rollback {
                        monitor.store_rollback_snapshot(ck);
                    }
                }
            }
            monitor.maybe_heartbeat(it, iterations, started, self.ws.stats());
        }
        let outcome = match monitor.first_divergence() {
            Some(first_iteration) => {
                monitor.emit_end(iterations, started, RunOutcome::DivergedWarned);
                FitOutcome::DivergedWarned { first_iteration }
            }
            None => {
                monitor.emit_end(iterations, started, RunOutcome::Completed);
                FitOutcome::Completed
            }
        };
        Ok(FitReport { iterations_run: iterations, outcome })
    }

    /// One standard discriminator update. Returns `(loss, gp, wasserstein)`.
    pub fn d_step<R: Rng + ?Sized>(
        &mut self,
        data: &EncodedDataset,
        idx: &[usize],
        rng: &mut R,
    ) -> (f32, f32, f32) {
        let real_full = data.full_rows(idx);
        let mut ws = std::mem::take(&mut self.ws);
        let gen_started = Instant::now();
        let fake_full = self.generate_fake_full(idx.len(), rng, &mut ws);
        self.last_gen_ms = gen_started.elapsed().as_secs_f64() * 1e3;
        let (loss, gp, w, grads) = self.d_loss_grads(real_full, fake_full, rng, &mut ws);
        self.ws = ws;
        self.d_opt.step(&mut self.model.store, &grads);
        self.d_updates += 1;
        (loss, gp, w)
    }

    /// Builds the combined discriminator loss for given real/fake batches and
    /// returns `(loss, gp, wasserstein, grads)`.
    ///
    /// Takes the batches by value: the gradient penalties (the only
    /// consumers that need the raw tensors) are recorded first, then the
    /// tensors move into the graph as constants without the per-call clones
    /// the old hot path paid. Tape position does not matter for
    /// correctness — ops only reference earlier nodes — and the RNG draw
    /// order (primary penalty, then auxiliary) is unchanged.
    fn d_loss_grads<R: Rng + ?Sized>(
        &self,
        real_full: Tensor,
        fake_full: Tensor,
        rng: &mut R,
        ws: &mut Workspace,
    ) -> (f32, f32, f32, GradMap) {
        let model = &self.model;
        let lambda = model.config.gp_lambda;
        let mut g = Graph::with_workspace(std::mem::take(ws));
        let gp = gradient_penalty(&mut g, &model.store, &model.disc, &real_full, &fake_full, rng);
        let aux = model.aux_disc.as_ref().map(|aux_disc| {
            let aw = model.aux_input_width();
            let real_am = real_full.slice_cols(0, aw);
            let fake_am = fake_full.slice_cols(0, aw);
            let aux_gp = gradient_penalty(&mut g, &model.store, aux_disc, &real_am, &fake_am, rng);
            (real_am, fake_am, aux_gp)
        });

        let rf = g.constant(real_full);
        let ff = g.constant(fake_full);
        let dr = model.discriminate(&mut g, rf, false);
        let df = model.discriminate(&mut g, ff, false);
        let mean_dr = g.mean_all(dr);
        let mean_df = g.mean_all(df);
        let w_term = g.sub(mean_df, mean_dr); // minimize E[D(fake)] - E[D(real)]
        let gp_term = g.scale(gp, lambda);
        let mut loss = g.add(w_term, gp_term);

        if let Some((real_am, fake_am, aux_gp)) = aux {
            let ra = g.constant(real_am);
            let fa = g.constant(fake_am);
            let ar = model.discriminate_aux(&mut g, ra, false);
            let af = model.discriminate_aux(&mut g, fa, false);
            let mean_ar = g.mean_all(ar);
            let mean_af = g.mean_all(af);
            let aux_w = g.sub(mean_af, mean_ar);
            let aux_gp_term = g.scale(aux_gp, lambda);
            let aux_loss = g.add(aux_w, aux_gp_term);
            let weighted = g.scale(aux_loss, model.config.alpha);
            loss = g.add(loss, weighted);
        }

        let loss_v = g.value(loss).get(0, 0);
        let gp_v = g.value(gp).get(0, 0);
        let w_v = -g.value(w_term).get(0, 0);
        g.backward(loss);
        let grads = g.param_grads();
        *ws = g.finish();
        (loss_v, gp_v, w_v, grads)
    }

    /// One DP-SGD discriminator update: per-sample gradients are clipped to
    /// `clip_norm` and Gaussian noise `N(0, (σ·C)²)` is added to the sum
    /// before averaging (Abadi et al., applied to GANs as in the paper's DP
    /// experiments).
    ///
    /// The per-sample forward/backward passes run on
    /// [`dg_nn::parallel::num_threads`] worker threads; results are bitwise
    /// identical for any worker count (see the module docs).
    pub fn d_step_dp<R: Rng + ?Sized>(
        &mut self,
        data: &EncodedDataset,
        idx: &[usize],
        rng: &mut R,
    ) -> (f32, f32, f32) {
        self.d_step_dp_threaded(data, idx, rng, num_threads())
    }

    /// [`Trainer::d_step_dp`] with an explicit worker-thread count.
    ///
    /// `threads = 1` is the serial reference; any other value produces
    /// bitwise-identical parameters. Exposed so determinism tests and
    /// benchmarks can pin the count independently of `DG_NUM_THREADS`.
    pub fn d_step_dp_threaded<R: Rng + ?Sized>(
        &mut self,
        data: &EncodedDataset,
        idx: &[usize],
        rng: &mut R,
        threads: usize,
    ) -> (f32, f32, f32) {
        let dp = self.dp.expect("d_step_dp requires a DP config");
        let mut ws = std::mem::take(&mut self.ws);
        let gen_started = Instant::now();
        let fake_full = self.generate_fake_full(idx.len(), rng, &mut ws);
        self.last_gen_ms = gen_started.elapsed().as_secs_f64() * 1e3;
        // Pre-split one seed per sample so the fan-out below cannot perturb
        // the randomness, whatever the thread count or scheduling order.
        let seeds = split_seeds(rng, idx.len());
        // Pre-split one workspace per worker, too: which pool serves a sample
        // cannot change its bytes (buffers always come out zeroed), so this
        // keeps the serial/parallel bitwise-equality guarantee.
        let workers = threads.clamp(1, idx.len().max(1));
        let mut dp_ws = std::mem::take(&mut self.dp_workspaces);
        dp_ws.truncate(workers);
        while dp_ws.len() < workers {
            dp_ws.push(if ws.pooling_enabled() { Workspace::new() } else { Workspace::unpooled() });
        }
        let samples =
            self.per_sample_clipped_grads(data, idx, &fake_full, &seeds, dp.clip_norm, threads, &mut dp_ws);
        self.dp_workspaces = dp_ws;
        self.ws = ws;

        // Merge in sample-index order (float addition is not associative, so
        // a fixed merge order is part of the determinism guarantee).
        let mut total = GradMap::with_capacity(self.model.store.len());
        let mut loss_sum = 0.0;
        let mut gp_sum = 0.0;
        let mut w_sum = 0.0;
        for s in &samples {
            loss_sum += s.loss;
            gp_sum += s.gp;
            w_sum += s.w;
            total.merge(&s.grads);
        }
        // Add calibrated Gaussian noise to the summed clipped gradients,
        // drawn from the step RNG *after* the per-sample seeds.
        let noise = Normal::new(0.0_f32, dp.noise_multiplier * dp.clip_norm).expect("valid noise");
        for (_, g) in total.iter_mut() {
            for x in g.as_mut_slice() {
                *x += noise.sample(rng);
            }
        }
        let b = idx.len().max(1) as f32;
        total.scale(1.0 / b);
        self.d_opt.step(&mut self.model.store, &total);
        self.d_updates += 1;
        (loss_sum / b, gp_sum / b, w_sum / b)
    }

    /// Computes the clipped per-sample gradients for a DP step, fanning the
    /// sample chunks out across the persistent `dg-nn` worker pool
    /// ([`dg_nn::parallel::run_indexed`]). Slot `k` of the result always
    /// holds sample `idx[k]` computed from `seeds[k]`, so the output is
    /// independent of the thread count. Chunk `i` draws its buffers
    /// exclusively from `workspaces[i]` (which must hold at least
    /// `min(threads, len)` entries); any matmul fan-out *inside* a
    /// per-sample graph runs inline on its executor (the pool never nests),
    /// so parallelism comes purely from the batch split.
    #[allow(clippy::too_many_arguments)]
    fn per_sample_clipped_grads(
        &self,
        data: &EncodedDataset,
        idx: &[usize],
        fake_full: &Tensor,
        seeds: &[u64],
        clip_norm: f32,
        threads: usize,
        workspaces: &mut [Workspace],
    ) -> Vec<SampleGrad> {
        let b = idx.len();
        let mut slots: Vec<Option<SampleGrad>> = (0..b).map(|_| None).collect();
        let one_sample = |k: usize, ws: &mut Workspace| -> SampleGrad {
            let mut srng = StdRng::seed_from_u64(seeds[k]);
            let real_row = data.full_rows(&idx[k..k + 1]);
            let fake_row = fake_full.slice_rows(k, k + 1);
            let (loss, gp, w, mut grads) = self.d_loss_grads(real_row, fake_row, &mut srng, ws);
            grads.clip_global_norm(clip_norm);
            SampleGrad { loss, gp, w, grads }
        };
        let threads = threads.clamp(1, b.max(1));
        if threads <= 1 {
            let ws = &mut workspaces[0];
            for (k, slot) in slots.iter_mut().enumerate() {
                *slot = Some(one_sample(k, ws));
            }
        } else {
            let chunk = b.div_ceil(threads);
            // One mutex per (slot-chunk, workspace) pair: each task index
            // locks exactly its own pair, so there is never contention —
            // the mutex only launders the `&mut` through the `Fn` closure.
            type DpChunk<'a> = (&'a mut [Option<SampleGrad>], &'a mut Workspace);
            let work: Vec<std::sync::Mutex<DpChunk<'_>>> =
                slots.chunks_mut(chunk).zip(workspaces.iter_mut()).map(std::sync::Mutex::new).collect();
            dg_nn::parallel::run_indexed(work.len(), |ci| {
                let mut pair = work[ci].lock().unwrap();
                let (chunk_slots, ws) = &mut *pair;
                for (j, slot) in chunk_slots.iter_mut().enumerate() {
                    *slot = Some(one_sample(ci * chunk + j, ws));
                }
            });
        }
        slots.into_iter().map(|s| s.expect("every sample slot is filled")).collect()
    }

    /// One generator update. Returns the generator loss.
    pub fn g_step<R: Rng + ?Sized>(&mut self, batch: usize, rng: &mut R) -> f32 {
        let ws = std::mem::take(&mut self.ws);
        let model = &self.model;
        let mut g = Graph::with_workspace(ws);
        let (attrs, minmax, _feats, full) = model.gen_full(&mut g, batch, rng, false);
        let score = model.discriminate(&mut g, full, true);
        let mean_score = g.mean_all(score);
        let mut loss = g.scale(mean_score, -1.0);
        if model.aux_disc.is_some() {
            let am = if g.value(minmax).cols() > 0 { g.concat_cols(&[attrs, minmax]) } else { attrs };
            let aux_score = model.discriminate_aux(&mut g, am, true);
            let mean_aux = g.mean_all(aux_score);
            let aux_term = g.scale(mean_aux, -model.config.alpha);
            loss = g.add(loss, aux_term);
        }
        let loss_v = g.value(loss).get(0, 0);
        g.backward(loss);
        let grads = g.param_grads();
        self.ws = g.finish();
        self.g_opt.step(&mut self.model.store, &grads);
        loss_v
    }

    /// Generates a detached batch of full rows from the frozen generator,
    /// via the shared sampler rollout — the same code path `Sampler` and
    /// the serving engine run, so `gen_ms` in run logs and the serving
    /// bench time identical work. The rollout pre-draws its noise with the
    /// exact tape/RNG order of the inline-noise graph builders, so the
    /// training trajectory is bitwise unchanged by the indirection.
    fn generate_fake_full<R: Rng + ?Sized>(&self, batch: usize, rng: &mut R, ws: &mut Workspace) -> Tensor {
        crate::sampler::generate_full_rows(&self.model, batch, rng, ws)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::DgConfig;
    use crate::telemetry::{RunEvent, RunLog, Watchdog, WatchdogConfig};
    use dg_datasets::sine::{self, SineConfig};
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn tiny_setup(seed: u64) -> (Trainer, EncodedDataset, StdRng) {
        let mut rng = StdRng::seed_from_u64(seed);
        let cfg = SineConfig { num_objects: 24, length: 16, periods: vec![4, 8], noise_sigma: 0.05 };
        let data = sine::generate(&cfg, &mut rng);
        let mut dg = DgConfig::quick().with_recommended_s(16);
        dg.attr_hidden = 12;
        dg.lstm_hidden = 12;
        dg.head_hidden = 12;
        dg.disc_hidden = 16;
        dg.disc_depth = 2;
        dg.batch_size = 8;
        let model = DoppelGanger::new(&data, dg, &mut rng);
        let enc = model.encode(&data);
        (Trainer::new(model), enc, rng)
    }

    #[test]
    fn d_step_changes_only_discriminator_params() {
        let (mut tr, enc, mut rng) = tiny_setup(1);
        let before = tr.model.store.clone();
        tr.d_step(&enc, &[0, 1, 2, 3], &mut rng);
        for id in tr.model.generator_params() {
            assert_eq!(before.get(id), tr.model.store.get(id), "generator moved during d step");
        }
        let moved =
            tr.model.discriminator_params().iter().any(|&id| before.get(id) != tr.model.store.get(id));
        assert!(moved, "discriminator should move during d step");
    }

    #[test]
    fn g_step_changes_only_generator_params() {
        let (mut tr, _enc, mut rng) = tiny_setup(2);
        let before = tr.model.store.clone();
        tr.g_step(4, &mut rng);
        for id in tr.model.discriminator_params() {
            assert_eq!(before.get(id), tr.model.store.get(id), "discriminator moved during g step");
        }
        let moved = tr.model.generator_params().iter().any(|&id| before.get(id) != tr.model.store.get(id));
        assert!(moved, "generator should move during g step");
    }

    #[test]
    fn fit_runs_and_reports_finite_metrics() {
        let (mut tr, enc, mut rng) = tiny_setup(3);
        let mut seen = 0;
        tr.fit(&enc, 5, &mut rng, |m| {
            assert!(m.d_loss.is_finite());
            assert!(m.g_loss.is_finite());
            assert!(m.gp.is_finite() && m.gp >= 0.0);
            seen += 1;
        });
        assert_eq!(seen, 5);
        assert_eq!(tr.d_updates, 5);
    }

    #[test]
    fn dp_step_adds_noise_but_stays_finite() {
        let (tr, enc, mut rng) = tiny_setup(4);
        let mut tr = tr.with_dp(DpConfig { clip_norm: 1.0, noise_multiplier: 1.0 });
        let (l, gp, w) = tr.d_step_dp(&enc, &[0, 1, 2, 3], &mut rng);
        assert!(l.is_finite() && gp.is_finite() && w.is_finite());
        for (_, _, t) in tr.model.store.iter() {
            assert!(t.is_finite(), "DP noise must not produce non-finite params");
        }
    }

    fn flat_params(tr: &Trainer) -> Vec<f32> {
        let mut out = Vec::new();
        for (_, _, t) in tr.model.store.iter() {
            out.extend_from_slice(t.as_slice());
        }
        out
    }

    #[test]
    fn fit_averages_metrics_across_critic_steps() {
        // Regression: fit used to overwrite d_loss/gp/wasserstein on every
        // critic step, reporting only the last one. Replicate fit's exact
        // step sequence manually and check the reported metrics equal the
        // per-iteration averages.
        let (mut a, enc, mut rng_a) = tiny_setup(9);
        a.model.config.d_steps_per_g = 3;
        let mut got = Vec::new();
        a.fit(&enc, 2, &mut rng_a, |m| got.push(*m));
        assert_eq!(got.len(), 2);

        let (mut b, enc_b, mut rng_b) = tiny_setup(9);
        b.model.config.d_steps_per_g = 3;
        let mut batches = BatchIter::new(enc_b.num_samples(), b.model.config.batch_size);
        for m in &got {
            let (mut dl, mut gp, mut w) = (0.0f32, 0.0f32, 0.0f32);
            for _ in 0..3 {
                let idx = batches.next_batch(&mut rng_b).to_vec();
                let (l, p, ws) = b.d_step(&enc_b, &idx, &mut rng_b);
                dl += l;
                gp += p;
                w += ws;
            }
            let inv = 1.0 / 3.0f32;
            assert_eq!(m.d_loss, dl * inv, "d_loss must be the critic-step average");
            assert_eq!(m.gp, gp * inv, "gp must be the critic-step average");
            assert_eq!(m.wasserstein, w * inv, "wasserstein must be the critic-step average");
            assert_eq!(m.g_loss, b.g_step(batches.batch_size(), &mut rng_b));
        }
    }

    #[test]
    fn dp_step_is_bitwise_identical_across_thread_counts() {
        // Two DP steps per run: the second exercises seed-splitting on an
        // RNG stream already advanced by a threaded step.
        let params_after = |threads: usize| -> Vec<f32> {
            let (tr, enc, mut rng) = tiny_setup(10);
            let mut tr = tr.with_dp(DpConfig { clip_norm: 1.0, noise_multiplier: 0.5 });
            let idx: Vec<usize> = (0..6).collect();
            tr.d_step_dp_threaded(&enc, &idx, &mut rng, threads);
            tr.d_step_dp_threaded(&enc, &idx, &mut rng, threads);
            flat_params(&tr)
        };
        let serial = params_after(1);
        for threads in [2usize, 3, 5, 16] {
            let got = params_after(threads);
            assert_eq!(serial.len(), got.len());
            for (i, (s, g)) in serial.iter().zip(&got).enumerate() {
                assert!(s.to_bits() == g.to_bits(), "param {i} diverged with {threads} threads: {s} vs {g}");
            }
        }
    }

    #[test]
    fn same_seed_dp_runs_are_bitwise_repeatable() {
        let run = || -> Vec<f32> {
            let (tr, enc, mut rng) = tiny_setup(11);
            let mut tr = tr.with_dp(DpConfig::moderate());
            let idx: Vec<usize> = (0..5).collect();
            tr.d_step_dp(&enc, &idx, &mut rng);
            flat_params(&tr)
        };
        assert!(dg_nn::gradcheck::check_bitwise_repeatable(run, 3).is_none());
    }

    #[test]
    fn d_steps_per_g_runs_multiple_critic_updates() {
        let (mut tr, enc, mut rng) = tiny_setup(6);
        tr.model.config.d_steps_per_g = 3;
        tr.fit(&enc, 4, &mut rng, |_| {});
        assert_eq!(tr.d_updates, 12, "3 critic updates per generator update");
    }

    #[test]
    fn disabling_aux_disc_still_trains() {
        let mut rng = StdRng::seed_from_u64(7);
        let cfg = SineConfig { num_objects: 16, length: 12, periods: vec![4], noise_sigma: 0.05 };
        let data = sine::generate(&cfg, &mut rng);
        let mut dg = DgConfig::quick().with_recommended_s(12).without_auxiliary_discriminator();
        dg.attr_hidden = 12;
        dg.lstm_hidden = 12;
        dg.head_hidden = 12;
        dg.disc_hidden = 16;
        dg.disc_depth = 2;
        dg.batch_size = 8;
        let model = DoppelGanger::new(&data, dg, &mut rng);
        assert!(model.aux_disc.is_none());
        let enc = model.encode(&data);
        let mut tr = Trainer::new(model);
        tr.fit(&enc, 5, &mut rng, |m| assert!(m.d_loss.is_finite()));
        let objs = crate::sampler::Sampler::new(tr.model.clone()).generate(3, &mut rng);
        assert_eq!(objs.len(), 3);
    }

    #[test]
    fn alpha_zero_silences_aux_gradient_pressure() {
        // With alpha = 0 the aux critic's *loss term* vanishes from the
        // generator update; the trainer must still run and stay finite.
        let (mut tr, enc, mut rng) = tiny_setup(8);
        tr.model.config.alpha = 0.0;
        tr.fit(&enc, 5, &mut rng, |m| {
            assert!(m.d_loss.is_finite() && m.g_loss.is_finite());
        });
    }

    #[test]
    fn monitored_fit_matches_plain_fit_bitwise() {
        // Monitoring adds no RNG draws, so the parameter trajectory must be
        // bitwise identical with and without a monitor attached.
        let (mut plain, enc, mut rng_a) = tiny_setup(20);
        plain.fit(&enc, 4, &mut rng_a, |_| {});

        let (mut monitored, enc_b, mut rng_b) = tiny_setup(20);
        let (log, _buf) = RunLog::in_memory();
        let mut mon = TrainMonitor::new()
            .with_log(log)
            .with_watchdog(Watchdog::new(WatchdogConfig { check_every: 2, policy: DivergencePolicy::Abort }))
            .with_heartbeat_every(2);
        let report = monitored.fit_monitored(&enc_b, 4, &mut rng_b, &mut mon, |_| {}).expect("healthy run");
        assert_eq!(report.iterations_run, 4);
        assert_eq!(report.outcome, FitOutcome::Completed);
        assert_eq!(flat_params(&plain), flat_params(&monitored));
    }

    #[test]
    fn monitored_fit_writes_header_iterations_heartbeats_and_end() {
        let (mut tr, enc, mut rng) = tiny_setup(21);
        let (log, buf) = RunLog::in_memory();
        let mut mon =
            TrainMonitor::new().with_log(log).with_label("unit").with_seed(21).with_heartbeat_every(2);
        tr.fit_monitored(&enc, 4, &mut rng, &mut mon, |_| {}).expect("healthy run");
        let events = crate::telemetry::parse_jsonl(&buf.contents()).expect("log must parse");
        match &events[0] {
            RunEvent::Header(h) => {
                assert_eq!(h.label, "unit");
                assert_eq!(h.seed, Some(21));
                assert_eq!(h.iterations, 4);
                assert_eq!(h.batch_size, 8);
                assert!(!h.dp);
            }
            other => panic!("first event must be the header, got {other:?}"),
        }
        let iters: Vec<_> = events
            .iter()
            .filter_map(|e| if let RunEvent::Iteration(i) = e { Some(i) } else { None })
            .collect();
        assert_eq!(iters.len(), 4);
        for (k, ev) in iters.iter().enumerate() {
            assert_eq!(ev.iteration, k);
            assert!(ev.d_loss.is_some() && ev.g_loss.is_some(), "healthy losses are logged as numbers");
            assert!(ev.d_ms > 0.0 && ev.d_ms >= ev.gen_ms && ev.gen_ms > 0.0 && ev.g_ms > 0.0);
        }
        let beats = events.iter().filter(|e| matches!(e, RunEvent::Heartbeat(_))).count();
        assert_eq!(beats, 2, "heartbeat every 2 over 4 iterations");
        match events.last().expect("nonempty") {
            RunEvent::End(e) => {
                assert_eq!(e.iterations_run, 4);
                assert_eq!(e.outcome, crate::telemetry::RunOutcome::Completed);
            }
            other => panic!("last event must be the end summary, got {other:?}"),
        }
    }

    /// Poisons one discriminator parameter with NaN, simulating divergence.
    fn poison(tr: &mut Trainer) {
        let id = tr.model.discriminator_params()[0];
        tr.model.store.get_mut(id).set(0, 0, f32::NAN);
    }

    #[test]
    fn monitored_fit_aborts_on_injected_nan() {
        let (mut tr, enc, mut rng) = tiny_setup(22);
        tr.fit(&enc, 1, &mut rng, |_| {});
        poison(&mut tr);
        let (log, buf) = RunLog::in_memory();
        let mut mon =
            TrainMonitor::new().with_log(log).with_watchdog(Watchdog::with_policy(DivergencePolicy::Abort));
        let err = tr.fit_monitored(&enc, 5, &mut rng, &mut mon, |_| {});
        let err = err.expect_err("NaN params must abort the run");
        let TrainError::Diverged { iteration, detail } = err else { panic!("expected a divergence error") };
        assert_eq!(iteration, 0, "detected on the first monitored iteration");
        assert!(!detail.is_empty());
        let events = crate::telemetry::parse_jsonl(&buf.contents()).expect("diverged log must still parse");
        assert!(events.iter().any(|e| matches!(e, RunEvent::Divergence(_))), "divergence event logged");
        match events.last().expect("nonempty") {
            RunEvent::End(e) => assert_eq!(e.outcome, crate::telemetry::RunOutcome::Aborted),
            other => panic!("expected end summary, got {other:?}"),
        }
        // The poisoned trainer still checkpoints losslessly for post-mortems.
        let json = tr.checkpoint().to_json().expect("non-finite checkpoint serializes");
        assert!(crate::checkpoint::Checkpoint::from_json(&json).is_ok());
    }

    #[test]
    fn monitored_fit_warn_policy_trains_through_divergence() {
        let (mut tr, enc, mut rng) = tiny_setup(23);
        poison(&mut tr);
        let mut mon = TrainMonitor::new().with_watchdog(Watchdog::with_policy(DivergencePolicy::Warn));
        let report = tr.fit_monitored(&enc, 3, &mut rng, &mut mon, |_| {}).expect("warn never errors");
        assert_eq!(report.iterations_run, 3, "warn policy runs to the end");
        assert_eq!(report.outcome, FitOutcome::DivergedWarned { first_iteration: 0 });
    }

    #[test]
    fn monitored_fit_rollback_restores_last_healthy_snapshot() {
        let (mut tr, enc, mut rng) = tiny_setup(24);
        let mut mon = TrainMonitor::new().with_watchdog(Watchdog::new(WatchdogConfig {
            check_every: 1,
            policy: DivergencePolicy::RollbackToCheckpoint,
        }));
        // Healthy warm-up: every iteration stores a fresh rollback snapshot.
        let report = tr.fit_monitored(&enc, 2, &mut rng, &mut mon, |_| {}).expect("healthy warm-up");
        assert_eq!(report.outcome, FitOutcome::Completed);
        let healthy = flat_params(&tr);
        assert_eq!(tr.d_updates, 2);

        poison(&mut tr);
        let report =
            tr.fit_monitored(&enc, 5, &mut rng, &mut mon, |_| {}).expect("rollback is an Ok outcome");
        assert_eq!(report.iterations_run, 1, "stops at the detecting iteration");
        match report.outcome {
            FitOutcome::RolledBack { detected_at, restored_d_updates } => {
                assert_eq!(detected_at, 0);
                assert_eq!(restored_d_updates, 2);
            }
            other => panic!("expected a rollback, got {other:?}"),
        }
        assert_eq!(flat_params(&tr), healthy, "parameters restored bitwise to the snapshot");
        assert_eq!(tr.d_updates, 2);

        // Without any snapshot, rollback degrades to a clean abort.
        let (mut fresh, enc2, mut rng2) = tiny_setup(25);
        poison(&mut fresh);
        let mut mon2 =
            TrainMonitor::new().with_watchdog(Watchdog::with_policy(DivergencePolicy::RollbackToCheckpoint));
        assert!(fresh.fit_monitored(&enc2, 2, &mut rng2, &mut mon2, |_| {}).is_err());
    }

    #[test]
    fn monitored_fit_periodic_checkpoint_sink_fires() {
        let (mut tr, enc, mut rng) = tiny_setup(26);
        let counter = std::sync::Arc::new(std::sync::atomic::AtomicUsize::new(0));
        let c2 = counter.clone();
        let mut mon = TrainMonitor::new().with_checkpoint_sink(
            2,
            Box::new(move |it, ck| {
                assert!(ck.d_updates > 0);
                assert!(it == 1 || it == 3, "due after iterations 2 and 4 (0-based 1 and 3)");
                c2.fetch_add(1, std::sync::atomic::Ordering::SeqCst);
                Ok(())
            }),
        );
        tr.fit_monitored(&enc, 5, &mut rng, &mut mon, |_| {}).expect("healthy run");
        assert_eq!(counter.load(std::sync::atomic::Ordering::SeqCst), 2, "after iterations 2 and 4");
    }

    #[test]
    fn monitored_fit_aborts_after_consecutive_checkpoint_failures() {
        let (mut tr, enc, mut rng) = tiny_setup(27);
        let (log, buf) = RunLog::in_memory();
        let attempts = std::sync::Arc::new(std::sync::atomic::AtomicUsize::new(0));
        let a2 = attempts.clone();
        let mut mon = TrainMonitor::new().with_log(log).with_max_checkpoint_failures(2).with_checkpoint_sink(
            1,
            Box::new(move |_, _| {
                a2.fetch_add(1, std::sync::atomic::Ordering::SeqCst);
                Err("disk on fire".into())
            }),
        );
        let err = tr.fit_monitored(&enc, 5, &mut rng, &mut mon, |_| {});
        let TrainError::CheckpointFailed { iteration, consecutive, detail } =
            err.expect_err("persistent sink failure must abort")
        else {
            panic!("expected a checkpoint-failure error")
        };
        assert_eq!(iteration, 1, "second consecutive failure hits at iteration 1");
        assert_eq!(consecutive, 2);
        assert!(detail.contains("disk on fire"));
        assert_eq!(attempts.load(std::sync::atomic::Ordering::SeqCst), 2);
        let events = crate::telemetry::parse_jsonl(&buf.contents()).expect("log parses");
        let failures = events.iter().filter(|e| matches!(e, RunEvent::CheckpointFailure(_))).count();
        assert_eq!(failures, 2, "each failed write is logged");
        match events.last().expect("nonempty") {
            RunEvent::End(e) => assert_eq!(e.outcome, crate::telemetry::RunOutcome::Aborted),
            other => panic!("expected end summary, got {other:?}"),
        }
    }

    #[test]
    fn checkpoint_failure_counter_resets_on_success() {
        let (mut tr, enc, mut rng) = tiny_setup(28);
        let calls = std::sync::Arc::new(std::sync::atomic::AtomicUsize::new(0));
        let c2 = calls.clone();
        // Fails on every other call: never two consecutive failures, so a
        // budget of 2 must let the run finish.
        let mut mon = TrainMonitor::new().with_max_checkpoint_failures(2).with_checkpoint_sink(
            1,
            Box::new(move |_, _| {
                if c2.fetch_add(1, std::sync::atomic::Ordering::SeqCst).is_multiple_of(2) {
                    Err("intermittent".into())
                } else {
                    Ok(())
                }
            }),
        );
        tr.fit_monitored(&enc, 6, &mut rng, &mut mon, |_| {}).expect("intermittent failures must not abort");
        assert_eq!(calls.load(std::sync::atomic::Ordering::SeqCst), 6);
        assert_eq!(mon.checkpoint_failures(), 0, "last call succeeded");
    }

    #[test]
    fn adversarial_training_improves_critic_separation_then_generator_catches_up() {
        // Short end-to-end smoke test: after training, the Wasserstein
        // estimate should be finite and the generator loss should respond.
        let (mut tr, enc, mut rng) = tiny_setup(5);
        let mut last = StepMetrics::default();
        tr.fit(&enc, 30, &mut rng, |m| last = *m);
        assert!(last.wasserstein.is_finite());
        assert!(last.g_loss.is_finite());
        // Generated data should still decode into valid objects.
        let objs = crate::sampler::Sampler::new(tr.model.clone()).generate(5, &mut rng);
        assert_eq!(objs.len(), 5);
    }
}
