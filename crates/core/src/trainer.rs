//! WGAN-GP training loop for DoppelGANger (Eq. 2 of the paper).
//!
//! Both discriminators are trained on the combined loss
//! `L1 + α·L2`, each term being a gradient-penalized Wasserstein loss; the
//! generator maximizes both critics' scores on generated samples. Training
//! alternates `d_steps_per_g` discriminator updates with one generator
//! update, using Adam on both sides (Appendix B).
//!
//! An optional [`crate::dpsgd::DpConfig`] switches the
//! discriminator update to DP-SGD (per-sample clipping + Gaussian noise),
//! reproducing the paper's differential-privacy experiments (§5.3.1).

use crate::dpsgd::DpConfig;
use crate::model::DoppelGanger;
use dg_data::{BatchIter, EncodedDataset};
use dg_nn::graph::Graph;
use dg_nn::optim::Adam;
use dg_nn::params::GradMap;
use dg_nn::penalty::gradient_penalty;
use dg_nn::tensor::Tensor;
use rand::Rng;
use rand_distr::{Distribution, Normal};

/// Per-iteration training telemetry.
#[derive(Debug, Clone, Copy, Default)]
pub struct StepMetrics {
    /// Iteration number (0-based).
    pub iteration: usize,
    /// Discriminator loss (lower = critic winning).
    pub d_loss: f32,
    /// Generator loss (`-E[D(G(z))] - α·E[D2(..)]`).
    pub g_loss: f32,
    /// Gradient-penalty value of the primary critic.
    pub gp: f32,
    /// Estimated Wasserstein distance (`E[D(real)] - E[D(fake)]`).
    pub wasserstein: f32,
}

/// Trains a [`DoppelGanger`] model.
pub struct Trainer {
    /// The model being trained.
    pub model: DoppelGanger,
    d_opt: Adam,
    g_opt: Adam,
    dp: Option<DpConfig>,
    /// Number of discriminator updates performed (for DP accounting).
    pub d_updates: usize,
}

impl Trainer {
    /// Creates a trainer with Adam optimizers configured from the model.
    pub fn new(model: DoppelGanger) -> Self {
        let c = &model.config;
        let d_opt = Adam::with_betas(c.d_lr, c.beta1, c.beta2);
        let g_opt = Adam::with_betas(c.g_lr, c.beta1, c.beta2);
        Trainer { model, d_opt, g_opt, dp: None, d_updates: 0 }
    }

    /// Enables DP-SGD on the discriminator updates.
    pub fn with_dp(mut self, dp: DpConfig) -> Self {
        self.dp = Some(dp);
        self
    }

    /// Consumes the trainer, returning the trained model.
    pub fn into_model(self) -> DoppelGanger {
        self.model
    }

    /// Discriminator-side optimizer state (for checkpointing).
    pub fn d_opt_state(&self) -> &Adam {
        &self.d_opt
    }

    /// Generator-side optimizer state (for checkpointing).
    pub fn g_opt_state(&self) -> &Adam {
        &self.g_opt
    }

    /// Restores optimizer state and the update counter (checkpoint resume).
    pub fn restore_opt_state(&mut self, d_opt: Adam, g_opt: Adam, d_updates: usize) {
        self.d_opt = d_opt;
        self.g_opt = g_opt;
        self.d_updates = d_updates;
    }

    /// Runs `iterations` generator updates (each preceded by
    /// `d_steps_per_g` discriminator updates), invoking `callback` after
    /// every iteration.
    pub fn fit<R: Rng + ?Sized>(
        &mut self,
        data: &EncodedDataset,
        iterations: usize,
        rng: &mut R,
        mut callback: impl FnMut(&StepMetrics),
    ) {
        let mut batches = BatchIter::new(data.num_samples(), self.model.config.batch_size);
        for it in 0..iterations {
            let mut m = StepMetrics { iteration: it, ..Default::default() };
            for _ in 0..self.model.config.d_steps_per_g.max(1) {
                let idx = batches.next_batch(rng).to_vec();
                let (d_loss, gp, w) = if self.dp.is_some() {
                    self.d_step_dp(data, &idx, rng)
                } else {
                    self.d_step(data, &idx, rng)
                };
                m.d_loss = d_loss;
                m.gp = gp;
                m.wasserstein = w;
            }
            m.g_loss = self.g_step(batches.batch_size(), rng);
            callback(&m);
        }
    }

    /// One standard discriminator update. Returns `(loss, gp, wasserstein)`.
    pub fn d_step<R: Rng + ?Sized>(
        &mut self,
        data: &EncodedDataset,
        idx: &[usize],
        rng: &mut R,
    ) -> (f32, f32, f32) {
        let real_full = data.full_rows(idx);
        let fake_full = self.generate_fake_full(idx.len(), rng);
        let (loss, gp, w, grads) = self.d_loss_grads(&real_full, &fake_full, rng);
        self.d_opt.step(&mut self.model.store, &grads);
        self.d_updates += 1;
        (loss, gp, w)
    }

    /// Builds the combined discriminator loss for given real/fake batches and
    /// returns `(loss, gp, wasserstein, grads)`.
    fn d_loss_grads<R: Rng + ?Sized>(
        &self,
        real_full: &Tensor,
        fake_full: &Tensor,
        rng: &mut R,
    ) -> (f32, f32, f32, GradMap) {
        let model = &self.model;
        let lambda = model.config.gp_lambda;
        let mut g = Graph::new();
        let rf = g.constant(real_full.clone());
        let ff = g.constant(fake_full.clone());
        let dr = model.discriminate(&mut g, rf, false);
        let df = model.discriminate(&mut g, ff, false);
        let mean_dr = g.mean_all(dr);
        let mean_df = g.mean_all(df);
        let w_term = g.sub(mean_df, mean_dr); // minimize E[D(fake)] - E[D(real)]
        let gp = gradient_penalty(&mut g, &model.store, &model.disc, real_full, fake_full, rng);
        let gp_term = g.scale(gp, lambda);
        let mut loss = g.add(w_term, gp_term);

        if model.aux_disc.is_some() {
            let aw = model.aux_input_width();
            let real_am = real_full.slice_cols(0, aw);
            let fake_am = fake_full.slice_cols(0, aw);
            let ra = g.constant(real_am.clone());
            let fa = g.constant(fake_am.clone());
            let ar = model.discriminate_aux(&mut g, ra, false);
            let af = model.discriminate_aux(&mut g, fa, false);
            let mean_ar = g.mean_all(ar);
            let mean_af = g.mean_all(af);
            let aux_w = g.sub(mean_af, mean_ar);
            let aux_gp = gradient_penalty(
                &mut g,
                &model.store,
                model.aux_disc.as_ref().expect("checked"),
                &real_am,
                &fake_am,
                rng,
            );
            let aux_gp_term = g.scale(aux_gp, lambda);
            let aux_loss = g.add(aux_w, aux_gp_term);
            let weighted = g.scale(aux_loss, model.config.alpha);
            loss = g.add(loss, weighted);
        }

        let loss_v = g.value(loss).get(0, 0);
        let gp_v = g.value(gp).get(0, 0);
        let w_v = -g.value(w_term).get(0, 0);
        g.backward(loss);
        (loss_v, gp_v, w_v, g.param_grads())
    }

    /// One DP-SGD discriminator update: per-sample gradients are clipped to
    /// `clip_norm` and Gaussian noise `N(0, (σ·C)²)` is added to the sum
    /// before averaging (Abadi et al., applied to GANs as in the paper's DP
    /// experiments).
    pub fn d_step_dp<R: Rng + ?Sized>(
        &mut self,
        data: &EncodedDataset,
        idx: &[usize],
        rng: &mut R,
    ) -> (f32, f32, f32) {
        let dp = self.dp.expect("d_step_dp requires a DP config");
        let fake_full = self.generate_fake_full(idx.len(), rng);
        let mut total = GradMap::with_capacity(self.model.store.len());
        let mut loss_sum = 0.0;
        let mut gp_sum = 0.0;
        let mut w_sum = 0.0;
        for (k, &i) in idx.iter().enumerate() {
            let real_row = data.full_rows(&[i]);
            let fake_row = fake_full.slice_rows(k, k + 1);
            let (l, gp, w, mut grads) = self.d_loss_grads(&real_row, &fake_row, rng);
            loss_sum += l;
            gp_sum += gp;
            w_sum += w;
            grads.clip_global_norm(dp.clip_norm);
            total.merge(&grads);
        }
        // Add calibrated Gaussian noise to the summed clipped gradients.
        let noise = Normal::new(0.0_f32, dp.noise_multiplier * dp.clip_norm).expect("valid noise");
        for (_, g) in total.iter_mut() {
            for x in g.as_mut_slice() {
                *x += noise.sample(rng);
            }
        }
        let b = idx.len().max(1) as f32;
        total.scale(1.0 / b);
        self.d_opt.step(&mut self.model.store, &total);
        self.d_updates += 1;
        (loss_sum / b, gp_sum / b, w_sum / b)
    }

    /// One generator update. Returns the generator loss.
    pub fn g_step<R: Rng + ?Sized>(&mut self, batch: usize, rng: &mut R) -> f32 {
        let model = &self.model;
        let mut g = Graph::new();
        let (attrs, minmax, _feats, full) = model.gen_full(&mut g, batch, rng, false);
        let score = model.discriminate(&mut g, full, true);
        let mean_score = g.mean_all(score);
        let mut loss = g.scale(mean_score, -1.0);
        if model.aux_disc.is_some() {
            let am = if g.value(minmax).cols() > 0 {
                g.concat_cols(&[attrs, minmax])
            } else {
                attrs
            };
            let aux_score = model.discriminate_aux(&mut g, am, true);
            let mean_aux = g.mean_all(aux_score);
            let aux_term = g.scale(mean_aux, -model.config.alpha);
            loss = g.add(loss, aux_term);
        }
        let loss_v = g.value(loss).get(0, 0);
        g.backward(loss);
        let grads = g.param_grads();
        self.g_opt.step(&mut self.model.store, &grads);
        loss_v
    }

    /// Generates a detached batch of full rows from the frozen generator.
    fn generate_fake_full<R: Rng + ?Sized>(&self, batch: usize, rng: &mut R) -> Tensor {
        let mut g = Graph::new();
        let (_, _, _, full) = self.model.gen_full(&mut g, batch, rng, true);
        g.value(full).clone()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::DgConfig;
    use dg_datasets::sine::{self, SineConfig};
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn tiny_setup(seed: u64) -> (Trainer, EncodedDataset, StdRng) {
        let mut rng = StdRng::seed_from_u64(seed);
        let cfg = SineConfig { num_objects: 24, length: 16, periods: vec![4, 8], noise_sigma: 0.05 };
        let data = sine::generate(&cfg, &mut rng);
        let mut dg = DgConfig::quick().with_recommended_s(16);
        dg.attr_hidden = 12;
        dg.lstm_hidden = 12;
        dg.head_hidden = 12;
        dg.disc_hidden = 16;
        dg.disc_depth = 2;
        dg.batch_size = 8;
        let model = DoppelGanger::new(&data, dg, &mut rng);
        let enc = model.encode(&data);
        (Trainer::new(model), enc, rng)
    }

    #[test]
    fn d_step_changes_only_discriminator_params() {
        let (mut tr, enc, mut rng) = tiny_setup(1);
        let before = tr.model.store.clone();
        tr.d_step(&enc, &[0, 1, 2, 3], &mut rng);
        for id in tr.model.generator_params() {
            assert_eq!(before.get(id), tr.model.store.get(id), "generator moved during d step");
        }
        let moved = tr
            .model
            .discriminator_params()
            .iter()
            .any(|&id| before.get(id) != tr.model.store.get(id));
        assert!(moved, "discriminator should move during d step");
    }

    #[test]
    fn g_step_changes_only_generator_params() {
        let (mut tr, _enc, mut rng) = tiny_setup(2);
        let before = tr.model.store.clone();
        tr.g_step(4, &mut rng);
        for id in tr.model.discriminator_params() {
            assert_eq!(before.get(id), tr.model.store.get(id), "discriminator moved during g step");
        }
        let moved = tr
            .model
            .generator_params()
            .iter()
            .any(|&id| before.get(id) != tr.model.store.get(id));
        assert!(moved, "generator should move during g step");
    }

    #[test]
    fn fit_runs_and_reports_finite_metrics() {
        let (mut tr, enc, mut rng) = tiny_setup(3);
        let mut seen = 0;
        tr.fit(&enc, 5, &mut rng, |m| {
            assert!(m.d_loss.is_finite());
            assert!(m.g_loss.is_finite());
            assert!(m.gp.is_finite() && m.gp >= 0.0);
            seen += 1;
        });
        assert_eq!(seen, 5);
        assert_eq!(tr.d_updates, 5);
    }

    #[test]
    fn dp_step_adds_noise_but_stays_finite() {
        let (tr, enc, mut rng) = tiny_setup(4);
        let mut tr = tr.with_dp(DpConfig { clip_norm: 1.0, noise_multiplier: 1.0 });
        let (l, gp, w) = tr.d_step_dp(&enc, &[0, 1, 2, 3], &mut rng);
        assert!(l.is_finite() && gp.is_finite() && w.is_finite());
        for (_, _, t) in tr.model.store.iter() {
            assert!(t.is_finite(), "DP noise must not produce non-finite params");
        }
    }

    #[test]
    fn d_steps_per_g_runs_multiple_critic_updates() {
        let (mut tr, enc, mut rng) = tiny_setup(6);
        tr.model.config.d_steps_per_g = 3;
        tr.fit(&enc, 4, &mut rng, |_| {});
        assert_eq!(tr.d_updates, 12, "3 critic updates per generator update");
    }

    #[test]
    fn disabling_aux_disc_still_trains() {
        let mut rng = StdRng::seed_from_u64(7);
        let cfg = SineConfig { num_objects: 16, length: 12, periods: vec![4], noise_sigma: 0.05 };
        let data = sine::generate(&cfg, &mut rng);
        let mut dg = DgConfig::quick().with_recommended_s(12).without_auxiliary_discriminator();
        dg.attr_hidden = 12;
        dg.lstm_hidden = 12;
        dg.head_hidden = 12;
        dg.disc_hidden = 16;
        dg.disc_depth = 2;
        dg.batch_size = 8;
        let model = DoppelGanger::new(&data, dg, &mut rng);
        assert!(model.aux_disc.is_none());
        let enc = model.encode(&data);
        let mut tr = Trainer::new(model);
        tr.fit(&enc, 5, &mut rng, |m| assert!(m.d_loss.is_finite()));
        let objs = tr.model.generate(3, &mut rng);
        assert_eq!(objs.len(), 3);
    }

    #[test]
    fn alpha_zero_silences_aux_gradient_pressure() {
        // With alpha = 0 the aux critic's *loss term* vanishes from the
        // generator update; the trainer must still run and stay finite.
        let (mut tr, enc, mut rng) = tiny_setup(8);
        tr.model.config.alpha = 0.0;
        tr.fit(&enc, 5, &mut rng, |m| {
            assert!(m.d_loss.is_finite() && m.g_loss.is_finite());
        });
    }

    #[test]
    fn adversarial_training_improves_critic_separation_then_generator_catches_up() {
        // Short end-to-end smoke test: after training, the Wasserstein
        // estimate should be finite and the generator loss should respond.
        let (mut tr, enc, mut rng) = tiny_setup(5);
        let mut last = StepMetrics::default();
        tr.fit(&enc, 30, &mut rng, |m| last = *m);
        assert!(last.wasserstein.is_finite());
        assert!(last.g_loss.is_finite());
        // Generated data should still decode into valid objects.
        let objs = tr.model.generate(5, &mut rng);
        assert_eq!(objs.len(), 5);
    }
}
