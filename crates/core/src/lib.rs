//! # doppelganger — GANs for sharing networked time series data
//!
//! A from-scratch Rust implementation of **DoppelGANger** (Lin, Jain, Wang,
//! Fanti, Sekar — *"Using GANs for Sharing Networked Time Series Data:
//! Challenges, Initial Promise, and Open Questions"*, IMC 2020).
//!
//! DoppelGANger generates synthetic datasets of objects `O = (A, R)` —
//! metadata attributes plus variable-length multi-dimensional time series —
//! with three design moves that set it apart from naive GANs:
//!
//! * **decoupled, conditional generation**: `P(O) = P(A)·P(R|A)`, with a
//!   dedicated attribute generator whose output conditions the feature
//!   generator at every step ([`model`]);
//! * **batched RNN generation**: the LSTM emits `S` records per pass so long
//!   series need only ~50 recurrence steps ([`config::DgConfig`]);
//! * **auto-normalization**: per-sample min/max are generated as fake
//!   attributes, defeating wide-dynamic-range mode collapse (implemented in
//!   `dg_data::encode`, driven from here).
//!
//! Training uses WGAN-GP on two critics ([`trainer`]), optionally under
//! DP-SGD ([`dpsgd`]). After training, the attribute generator alone can be
//! retrained to any target distribution ([`retrain`]) — the paper's
//! flexibility and business-secret masking mechanisms.
//!
//! ## Quickstart
//!
//! ```no_run
//! use doppelganger::prelude::*;
//! use rand::{rngs::StdRng, SeedableRng};
//!
//! let mut rng = StdRng::seed_from_u64(0);
//! let data = dg_datasets::sine::generate(&dg_datasets::SineConfig::default(), &mut rng);
//! let config = DgConfig::quick().with_recommended_s(data.schema.max_len);
//! let model = DoppelGanger::new(&data, config, &mut rng);
//! let encoded = model.encode(&data);
//! let mut trainer = Trainer::new(model);
//! trainer.fit(&encoded, 400, &mut rng, |m| {
//!     if m.iteration % 100 == 0 { println!("iter {} W≈{:.3}", m.iteration, m.wasserstein); }
//! });
//! let sampler = Sampler::new(trainer.into_model());
//! let synthetic = sampler.generate_dataset(1000, &mut rng);
//! println!("generated {} objects", synthetic.len());
//! ```

#![warn(missing_docs)]

pub mod artifact;
pub mod checkpoint;
pub mod config;
pub mod dpsgd;
pub mod layout;
pub mod model;
pub mod retrain;
pub mod rng;
pub mod sampler;
pub mod serve;
pub mod telemetry;
pub mod trainer;

/// Commonly used types.
pub mod prelude {
    pub use crate::artifact::{checkpoint_sink, CheckpointStore, LoadedSnapshot, TrainSnapshot};
    pub use crate::checkpoint::Checkpoint;
    pub use crate::config::DgConfig;
    pub use crate::dpsgd::DpConfig;
    pub use crate::model::DoppelGanger;
    pub use crate::retrain::{
        retrain_attribute_generator, retrain_attribute_generator_monitored, AttributeDistribution,
    };
    pub use crate::rng::{SharedRng, TrainRng};
    pub use crate::sampler::{ReloadReport, SampleRequest, Sampler, SamplerError};
    pub use crate::serve::{
        BatchEngine, LatencyRing, ServeConfig, ServeError, ServeFaultPlan, ServeHealth, ServeStats,
    };
    pub use crate::telemetry::{
        DivergencePolicy, FitOutcome, FitReport, RunEvent, RunLog, TrainError, TrainMonitor, Watchdog,
        WatchdogConfig,
    };
    pub use crate::trainer::{StepMetrics, Trainer};
    pub use dg_nn::kernels::Precision;
}

pub use config::DgConfig;
pub use model::DoppelGanger;
pub use sampler::Sampler;
pub use trainer::Trainer;
