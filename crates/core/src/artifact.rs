//! Crash-safe checkpoint persistence: [`TrainSnapshot`] (checkpoint +
//! RNG stream position + completed-iteration count) stored through
//! `dg_io`'s atomic, envelope-wrapped, rotated [`ArtifactStore`].
//!
//! This is the layer that extends the in-process bit-exact resume
//! guarantee (see [`crate::checkpoint`]) across process death: a
//! [`CheckpointStore::save`] that returns `Ok` survives any subsequent
//! kill, and [`CheckpointStore::load_latest`] lands on the newest
//! snapshot that is valid end to end — envelope CRC *and* JSON — skipping
//! truncated, bit-flipped, or partially-renamed files. Resuming from the
//! loaded snapshot replays the exact parameter trajectory of an
//! uninterrupted run because the RNG state rides in the snapshot.

use crate::checkpoint::Checkpoint;
use crate::rng::{SharedRng, TrainRng};
use crate::telemetry::CheckpointSink;
use dg_io::{ArtifactStore, Backend, RotationOutcome, SkippedArtifact, StdBackend, StoreError};
use serde::Deserialize;
use std::path::PathBuf;

/// Artifact family name for training checkpoints
/// (`ckpt-00000123.dgart`).
pub const CKPT_FAMILY: &str = "ckpt";

/// Everything needed to continue a training run bitwise-identically
/// after process death.
#[derive(Debug, Clone, Deserialize)]
pub struct TrainSnapshot {
    /// Completed training iterations at snapshot time.
    pub iteration: usize,
    /// Training-stream RNG state right after iteration `iteration - 1`.
    /// `None` when the driving RNG is not serializable (e.g. a plain
    /// `StdRng`); resume then restarts the stream, losing bit-exactness
    /// but not correctness.
    #[serde(default)]
    pub rng: Option<TrainRng>,
    /// Model, optimizer, and batch-shuffler state.
    pub checkpoint: Checkpoint,
}

impl TrainSnapshot {
    /// Serializes to JSON, routing the checkpoint through
    /// [`Checkpoint::to_json`] so non-finite scalars stay lossless.
    pub fn to_json(&self) -> Result<String, String> {
        let ck = self.checkpoint.to_json().map_err(|e| e.to_string())?;
        let rng = serde_json::to_string(&self.rng).map_err(|e| e.to_string())?;
        Ok(format!("{{\"iteration\":{},\"rng\":{},\"checkpoint\":{}}}", self.iteration, rng, ck))
    }

    /// Restores from [`TrainSnapshot::to_json`] output, re-applying the
    /// checkpoint's non-finite bit patterns.
    pub fn from_json(json: &str) -> Result<Self, String> {
        let mut snap: TrainSnapshot = serde_json::from_str(json).map_err(|e| e.to_string())?;
        snap.checkpoint.apply_nonfinite();
        Ok(snap)
    }
}

/// A snapshot that survived recovery, with its provenance.
#[derive(Debug, Clone)]
pub struct LoadedSnapshot {
    /// The recovered training state.
    pub snapshot: TrainSnapshot,
    /// Sequence number (completed iterations) of the file it came from.
    pub seq: u64,
    /// The file it came from.
    pub path: PathBuf,
}

/// Rotated, crash-safe storage for [`TrainSnapshot`]s in one directory.
#[derive(Debug)]
pub struct CheckpointStore<B: Backend> {
    store: ArtifactStore<B>,
}

impl CheckpointStore<StdBackend> {
    /// Opens a checkpoint store on the real filesystem.
    pub fn open_std(dir: impl Into<PathBuf>) -> Result<Self, StoreError> {
        Ok(CheckpointStore { store: ArtifactStore::open_std(dir)? })
    }
}

impl<B: Backend> CheckpointStore<B> {
    /// Opens (creating if needed) a checkpoint store rooted at `dir`.
    pub fn open(backend: B, dir: impl Into<PathBuf>) -> Result<Self, StoreError> {
        Ok(CheckpointStore { store: ArtifactStore::open(backend, dir)? })
    }

    /// Sets the retain-N rotation policy (keep the `n` newest snapshots).
    pub fn with_retain(mut self, n: usize) -> Self {
        self.store = self.store.with_retain(n);
        self
    }

    /// The store's root directory.
    pub fn dir(&self) -> &std::path::Path {
        self.store.dir()
    }

    /// Durably commits `snap`, sequenced by its completed-iteration
    /// count. `Ok` means the snapshot survives any subsequent crash.
    pub fn save(&self, snap: &TrainSnapshot) -> Result<RotationOutcome, StoreError> {
        let json = snap
            .to_json()
            .map_err(|e| StoreError::new("save", self.store.dir(), dg_io::ErrorKind::Serialization, e))?;
        self.store.put_numbered(CKPT_FAMILY, snap.iteration as u64, json.as_bytes())
    }

    /// Scans snapshots newest-first and returns the first that validates
    /// end to end — envelope CRC *and* JSON parse — plus every newer
    /// candidate it skipped. `(None, ...)` with an empty or missing
    /// directory is the fresh-start case.
    pub fn load_latest(&self) -> Result<(Option<LoadedSnapshot>, Vec<SkippedArtifact>), StoreError> {
        let mut skipped = Vec::new();
        for (seq, path) in self.store.candidates(CKPT_FAMILY)? {
            let payload = match self.store.read_envelope(&path) {
                Ok(p) => p,
                Err(e) => {
                    skipped.push(SkippedArtifact { path, reason: e.detail });
                    continue;
                }
            };
            match std::str::from_utf8(&payload).map_err(|e| e.to_string()).and_then(TrainSnapshot::from_json)
            {
                Ok(snapshot) => {
                    return Ok((Some(LoadedSnapshot { snapshot, seq, path }), skipped));
                }
                Err(reason) => skipped.push(SkippedArtifact { path, reason }),
            }
        }
        Ok((None, skipped))
    }
}

/// Builds a [`CheckpointSink`] that persists every periodic checkpoint as
/// a [`TrainSnapshot`] — with the shared RNG's exact stream position —
/// into `store`. Wire it up with
/// [`TrainMonitor::with_checkpoint_sink`](crate::telemetry::TrainMonitor::with_checkpoint_sink).
///
/// `base_iteration` is the number of iterations already completed before
/// this fit began — 0 for a fresh run, the recovered snapshot's
/// `iteration` for a resumed one. The sink receives *local* 0-based
/// iteration indices from the monitor, so without the offset a resumed
/// run would re-number its snapshots from 1 and overwrite earlier
/// checkpoints with newer state mislabeled under old sequence numbers.
pub fn checkpoint_sink<B: Backend + Send + 'static>(
    store: CheckpointStore<B>,
    rng: SharedRng,
    base_iteration: usize,
) -> CheckpointSink {
    Box::new(move |it, ck| {
        let snap = TrainSnapshot {
            iteration: base_iteration + it + 1,
            rng: Some(rng.snapshot()),
            checkpoint: ck.clone(),
        };
        store.save(&snap).map(|_| ()).map_err(|e| e.to_string())
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::DgConfig;
    use crate::trainer::Trainer;
    use dg_datasets::sine::{self, SineConfig};
    use dg_io::MemBackend;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn tiny_snapshot(seed: u64, iteration: usize) -> TrainSnapshot {
        let mut rng = StdRng::seed_from_u64(seed);
        let cfg = SineConfig { num_objects: 8, length: 6, periods: vec![3], noise_sigma: 0.0 };
        let data = sine::generate(&cfg, &mut rng);
        let mut dg = DgConfig::quick().with_recommended_s(6);
        dg.attr_hidden = 4;
        dg.lstm_hidden = 4;
        dg.head_hidden = 4;
        dg.disc_hidden = 6;
        dg.disc_depth = 2;
        dg.batch_size = 4;
        let model = crate::model::DoppelGanger::new(&data, dg, &mut rng);
        let enc = model.encode(&data);
        let mut t = Trainer::new(model);
        t.fit(&enc, 1, &mut rng, |_| {});
        TrainSnapshot { iteration, rng: Some(TrainRng::seed_from_u64(seed)), checkpoint: t.checkpoint() }
    }

    fn params(ck: &Checkpoint) -> Vec<u32> {
        let mut ck = ck.clone();
        ck.model
            .store
            .tensors_mut()
            .flat_map(|t| t.as_slice().iter().map(|x| x.to_bits()).collect::<Vec<_>>())
            .collect()
    }

    #[test]
    fn snapshot_json_roundtrips_including_rng() {
        let snap = tiny_snapshot(61, 5);
        let json = snap.to_json().expect("serialize");
        let back = TrainSnapshot::from_json(&json).expect("parse");
        assert_eq!(back.iteration, 5);
        assert_eq!(back.rng, snap.rng);
        assert_eq!(params(&back.checkpoint), params(&snap.checkpoint));
    }

    #[test]
    fn save_load_roundtrip_and_rotation() {
        let store = CheckpointStore::open(MemBackend::new(), "ckpts").unwrap().with_retain(2);
        for it in [2usize, 4, 6] {
            store.save(&tiny_snapshot(62, it)).unwrap();
        }
        let (loaded, skipped) = store.load_latest().unwrap();
        let loaded = loaded.expect("snapshots exist");
        assert_eq!(loaded.seq, 6);
        assert_eq!(loaded.snapshot.iteration, 6);
        assert!(skipped.is_empty());
    }

    #[test]
    fn json_corrupt_snapshot_inside_valid_envelope_is_skipped() {
        let mem = MemBackend::new();
        let store = CheckpointStore::open(mem.clone(), "ckpts").unwrap().with_retain(4);
        store.save(&tiny_snapshot(63, 2)).unwrap();
        store.save(&tiny_snapshot(63, 4)).unwrap();
        // A perfectly CRC-valid envelope whose payload is not a snapshot:
        // recovery must keep scanning to the older checkpoint.
        let bad_name = ArtifactStore::<MemBackend>::artifact_name(CKPT_FAMILY, 9);
        let raw_store = ArtifactStore::open(mem, "ckpts").unwrap();
        raw_store.put(&bad_name, b"{\"not\":\"a snapshot\"}").unwrap();

        let (loaded, skipped) = store.load_latest().unwrap();
        assert_eq!(loaded.expect("older snapshot survives").seq, 4);
        assert_eq!(skipped.len(), 1);
        assert!(skipped[0].path.ends_with(&bad_name));
    }

    #[test]
    fn checkpoint_sink_sequences_globally_from_base_iteration() {
        let mem = MemBackend::new();
        let store = CheckpointStore::open(mem.clone(), "ckpts").unwrap();
        let snap = tiny_snapshot(64, 0);
        let rng = SharedRng::seed_from_u64(64);
        // A resumed run that already completed 4 iterations: its first
        // periodic checkpoint (local it=1) is global iteration 6.
        let mut sink = checkpoint_sink(store, rng, 4);
        sink(1, &snap.checkpoint).expect("save");
        let reader = CheckpointStore::open(mem, "ckpts").unwrap();
        let (loaded, _) = reader.load_latest().unwrap();
        let loaded = loaded.expect("snapshot saved");
        assert_eq!(loaded.seq, 6, "sequence must be global, not local to the resumed fit");
        assert_eq!(loaded.snapshot.iteration, 6);
    }

    #[test]
    fn empty_store_is_a_clean_fresh_start() {
        let store = CheckpointStore::open(MemBackend::new(), "ckpts").unwrap();
        let (loaded, skipped) = store.load_latest().unwrap();
        assert!(loaded.is_none() && skipped.is_empty());
    }
}
