//! Training checkpoints: serialize a [`Trainer`] mid-run — model parameters
//! *and* optimizer state — so long GAN trainings (the paper trained up to
//! 200k batches) can stop and resume exactly.
//!
//! Resuming from a checkpoint continues the identical parameter trajectory
//! as uninterrupted training given the same RNG stream, because Adam's step
//! count and moment estimates are preserved *and* the epoch shuffler's state
//! ([`dg_data::BatchIter`]: shuffled order + cursor) is part of the
//! snapshot, so a resumed [`Trainer::fit`] replays the exact batch sequence
//! an uninterrupted run would have seen (verified by test).

use crate::model::DoppelGanger;
use crate::trainer::Trainer;
use dg_data::BatchIter;
use dg_nn::optim::Adam;
use serde::{Deserialize, Serialize};

/// A serializable snapshot of an in-progress training run.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Checkpoint {
    /// The model (parameters, encoder, config).
    pub model: DoppelGanger,
    /// Discriminator-side Adam state.
    pub d_opt: Adam,
    /// Generator-side Adam state.
    pub g_opt: Adam,
    /// Discriminator updates performed so far (for DP accounting).
    pub d_updates: usize,
    /// Epoch shuffler state, if training went through [`Trainer::fit`].
    /// Defaults to `None` for checkpoints written before this field existed.
    #[serde(default)]
    pub batches: Option<BatchIter>,
}

impl Checkpoint {
    /// Serializes to JSON.
    pub fn to_json(&self) -> String {
        serde_json::to_string(self).expect("checkpoint serialization cannot fail")
    }

    /// Restores from [`Checkpoint::to_json`] output.
    pub fn from_json(json: &str) -> Result<Self, serde_json::Error> {
        serde_json::from_str(json)
    }
}

impl Trainer {
    /// Snapshots the full training state.
    pub fn checkpoint(&self) -> Checkpoint {
        Checkpoint {
            model: self.model.clone(),
            d_opt: self.d_opt_state().clone(),
            g_opt: self.g_opt_state().clone(),
            d_updates: self.d_updates,
            batches: self.batch_state().cloned(),
        }
    }

    /// Rebuilds a trainer from a checkpoint, resuming the exact trajectory.
    /// DP mode is not part of the checkpoint; re-enable it with
    /// [`Trainer::with_dp`] if the original run used it.
    pub fn resume(ck: Checkpoint) -> Self {
        let mut t = Trainer::new(ck.model);
        t.restore_opt_state(ck.d_opt, ck.g_opt, ck.d_updates);
        t.restore_batch_state(ck.batches);
        t
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::DgConfig;
    use dg_datasets::sine::{self, SineConfig};
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn resumed_training_matches_uninterrupted_training_exactly() {
        let mut rng = StdRng::seed_from_u64(55);
        let cfg = SineConfig { num_objects: 16, length: 10, periods: vec![5], noise_sigma: 0.05 };
        let data = sine::generate(&cfg, &mut rng);
        let mut dg = DgConfig::quick().with_recommended_s(10);
        dg.attr_hidden = 8;
        dg.lstm_hidden = 8;
        dg.head_hidden = 8;
        dg.disc_hidden = 10;
        dg.disc_depth = 2;
        dg.batch_size = 8;

        // Uninterrupted: 6 fit iterations straight through the real training
        // loop (internal epoch shuffler and all).
        let mut r1 = StdRng::seed_from_u64(9);
        let model1 = crate::model::DoppelGanger::new(&data, dg.clone(), &mut StdRng::seed_from_u64(1));
        let enc = model1.encode(&data);
        let mut t1 = Trainer::new(model1);
        t1.fit(&enc, 6, &mut r1, |_| {});

        // Interrupted: fit 3, checkpoint through JSON (which now carries the
        // shuffler's order + cursor), resume, fit 3 more on the continuing
        // RNG stream.
        let mut r2 = StdRng::seed_from_u64(9);
        let model2 = crate::model::DoppelGanger::new(&data, dg, &mut StdRng::seed_from_u64(1));
        let mut t2 = Trainer::new(model2);
        t2.fit(&enc, 3, &mut r2, |_| {});
        let ck = Checkpoint::from_json(&t2.checkpoint().to_json()).expect("roundtrip");
        assert!(ck.batches.is_some(), "fit must leave batch state for the checkpoint");
        let mut t3 = Trainer::resume(ck);
        t3.fit(&enc, 3, &mut r2, |_| {});

        assert_eq!(t1.d_updates, t3.d_updates);
        for (id, _, p1) in t1.model.store.iter() {
            assert_eq!(p1, t3.model.store.get(id), "parameter {:?} diverged after resume", id);
        }
    }

    #[test]
    fn checkpoint_json_is_self_contained() {
        let mut rng = StdRng::seed_from_u64(56);
        let cfg = SineConfig { num_objects: 8, length: 6, periods: vec![3], noise_sigma: 0.0 };
        let data = sine::generate(&cfg, &mut rng);
        let mut dg = DgConfig::quick().with_recommended_s(6);
        dg.attr_hidden = 8;
        dg.lstm_hidden = 8;
        dg.head_hidden = 8;
        dg.disc_hidden = 10;
        dg.disc_depth = 2;
        dg.batch_size = 4;
        let model = crate::model::DoppelGanger::new(&data, dg, &mut rng);
        let enc = model.encode(&data);
        let mut t = Trainer::new(model);
        t.fit(&enc, 2, &mut rng, |_| {});
        let json = t.checkpoint().to_json();
        let ck = Checkpoint::from_json(&json).expect("parse");
        assert_eq!(ck.d_updates, 2);
        // The restored model can generate immediately.
        let restored = Trainer::resume(ck);
        let objs = restored.model.generate(2, &mut rng);
        assert_eq!(objs.len(), 2);
    }
}
