//! Training checkpoints: serialize a [`Trainer`] mid-run — model parameters
//! *and* optimizer state — so long GAN trainings (the paper trained up to
//! 200k batches) can stop and resume exactly.
//!
//! Resuming from a checkpoint continues the identical parameter trajectory
//! as uninterrupted training given the same RNG stream, because Adam's step
//! count and moment estimates are preserved *and* the epoch shuffler's state
//! ([`dg_data::BatchIter`]: shuffled order + cursor) is part of the
//! snapshot, so a resumed [`Trainer::fit`] replays the exact batch sequence
//! an uninterrupted run would have seen (verified by test).
//!
//! ## Non-finite values
//!
//! JSON has no literal for NaN or ±Inf — serializers emit `null`, which
//! does not parse back into an `f32`. A checkpoint of a diverged run (the
//! case where you most want a post-mortem snapshot) used to either panic or
//! fail to round-trip. [`Checkpoint::to_json`] now zeroes every non-finite
//! scalar before serializing and records its position and exact 32-bit
//! pattern in [`Checkpoint::nonfinite`]; [`Checkpoint::from_json`] patches
//! the original bits back, so the round trip is lossless down to NaN
//! payloads. Healthy checkpoints carry an empty patch list and are
//! byte-compatible with the previous format.

use crate::dpsgd::DpConfig;
use crate::model::DoppelGanger;
use crate::trainer::Trainer;
use dg_data::BatchIter;
use dg_nn::optim::Adam;
use dg_nn::tensor::Tensor;
use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;

/// Which scalar sequence of the checkpoint a [`NonFinitePatch`] addresses.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Serialize, Deserialize)]
pub enum PatchSection {
    /// The model's parameter store, tensors in id order, row-major scalars.
    Store,
    /// Discriminator Adam moments, all `m` then all `v`, id order.
    DOpt,
    /// Generator Adam moments, all `m` then all `v`, id order.
    GOpt,
}

/// One non-finite scalar extracted before JSON serialization: its flat
/// position within a [`PatchSection`] and its exact bit pattern.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct NonFinitePatch {
    /// The scalar sequence this patch belongs to.
    pub section: PatchSection,
    /// Flat index within the section's canonical scalar order.
    pub index: usize,
    /// `f32::to_bits` of the original value.
    pub bits: u32,
}

/// A serializable snapshot of an in-progress training run.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Checkpoint {
    /// The model (parameters, encoder, config).
    pub model: DoppelGanger,
    /// Discriminator-side Adam state.
    pub d_opt: Adam,
    /// Generator-side Adam state.
    pub g_opt: Adam,
    /// Discriminator updates performed so far (for DP accounting).
    pub d_updates: usize,
    /// Epoch shuffler state, if training went through [`Trainer::fit`].
    /// Defaults to `None` for checkpoints written before this field existed.
    #[serde(default)]
    pub batches: Option<BatchIter>,
    /// DP-SGD configuration of the run, if any. Earlier checkpoints dropped
    /// this, so resuming a DP run silently fell back to non-private updates
    /// (invalidating the privacy accounting); now [`Trainer::resume`]
    /// re-enables DP automatically. Defaults to `None` for old checkpoints.
    #[serde(default)]
    pub dp: Option<DpConfig>,
    /// Bit patterns of non-finite scalars zeroed for JSON transport
    /// (see the module docs). Empty for healthy checkpoints.
    #[serde(default)]
    pub nonfinite: Vec<NonFinitePatch>,
}

impl Checkpoint {
    /// Serializes to JSON. Non-finite parameter and optimizer scalars are
    /// carried losslessly via [`Checkpoint::nonfinite`] (see the module
    /// docs), so even a diverged run checkpoints cleanly.
    pub fn to_json(&self) -> Result<String, serde_json::Error> {
        let mut clean = self.clone();
        clean.nonfinite = clean.extract_nonfinite();
        serde_json::to_string(&clean)
    }

    /// Restores from [`Checkpoint::to_json`] output, patching non-finite
    /// scalars back to their original bit patterns.
    pub fn from_json(json: &str) -> Result<Self, serde_json::Error> {
        let mut ck: Checkpoint = serde_json::from_str(json)?;
        ck.apply_nonfinite();
        Ok(ck)
    }

    /// Zeroes every non-finite scalar in place and returns the patch list
    /// describing what was removed.
    fn extract_nonfinite(&mut self) -> Vec<NonFinitePatch> {
        let mut patches = Vec::new();
        for (section, tensors) in self.sections() {
            let mut flat = 0usize;
            for t in tensors {
                for x in t.as_mut_slice() {
                    if !x.is_finite() {
                        patches.push(NonFinitePatch { section, index: flat, bits: x.to_bits() });
                        *x = 0.0;
                    }
                    flat += 1;
                }
            }
        }
        patches
    }

    /// Re-applies the patch list produced by
    /// [`Checkpoint::extract_nonfinite`], then clears it. Crate-visible so
    /// [`crate::artifact::TrainSnapshot`] can deserialize an embedded
    /// checkpoint with the same lossless non-finite handling.
    pub(crate) fn apply_nonfinite(&mut self) {
        if self.nonfinite.is_empty() {
            return;
        }
        let mut by_section: BTreeMap<PatchSection, BTreeMap<usize, u32>> = BTreeMap::new();
        for p in self.nonfinite.drain(..) {
            by_section.entry(p.section).or_default().insert(p.index, p.bits);
        }
        for (section, tensors) in self.sections() {
            let Some(patches) = by_section.get(&section) else { continue };
            let mut flat = 0usize;
            for t in tensors {
                for x in t.as_mut_slice() {
                    if let Some(&bits) = patches.get(&flat) {
                        *x = f32::from_bits(bits);
                    }
                    flat += 1;
                }
            }
        }
    }

    /// The three patchable scalar sections, each as `(tag, tensors)` in the
    /// canonical order shared by [`Checkpoint::extract_nonfinite`] and
    /// [`Checkpoint::apply_nonfinite`].
    fn sections(&mut self) -> [(PatchSection, Vec<&mut Tensor>); 3] {
        [
            (PatchSection::Store, self.model.store.tensors_mut().collect()),
            (PatchSection::DOpt, self.d_opt.moment_tensors_mut().collect()),
            (PatchSection::GOpt, self.g_opt.moment_tensors_mut().collect()),
        ]
    }
}

impl Trainer {
    /// Snapshots the full training state, including the DP-SGD
    /// configuration when one is active.
    pub fn checkpoint(&self) -> Checkpoint {
        Checkpoint {
            model: self.model.clone(),
            d_opt: self.d_opt_state().clone(),
            g_opt: self.g_opt_state().clone(),
            d_updates: self.d_updates,
            batches: self.batch_state().cloned(),
            dp: self.dp_config(),
            nonfinite: Vec::new(),
        }
    }

    /// Rebuilds a trainer from a checkpoint, resuming the exact trajectory.
    /// DP mode is restored from the checkpoint (earlier formats without the
    /// field resume as non-DP — re-enable with [`Trainer::with_dp`]).
    pub fn resume(ck: Checkpoint) -> Self {
        let mut t = Trainer::new(ck.model);
        t.restore_opt_state(ck.d_opt, ck.g_opt, ck.d_updates);
        t.restore_batch_state(ck.batches);
        t.set_dp(ck.dp);
        t
    }

    /// Restores a checkpoint into this trainer in place (the watchdog's
    /// rollback path — keeps the trainer's workspaces warm).
    pub fn restore(&mut self, ck: Checkpoint) {
        self.model = ck.model;
        self.restore_opt_state(ck.d_opt, ck.g_opt, ck.d_updates);
        self.restore_batch_state(ck.batches);
        self.set_dp(ck.dp);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::DgConfig;
    use dg_datasets::sine::{self, SineConfig};
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn resumed_training_matches_uninterrupted_training_exactly() {
        let mut rng = StdRng::seed_from_u64(55);
        let cfg = SineConfig { num_objects: 16, length: 10, periods: vec![5], noise_sigma: 0.05 };
        let data = sine::generate(&cfg, &mut rng);
        let mut dg = DgConfig::quick().with_recommended_s(10);
        dg.attr_hidden = 8;
        dg.lstm_hidden = 8;
        dg.head_hidden = 8;
        dg.disc_hidden = 10;
        dg.disc_depth = 2;
        dg.batch_size = 8;

        // Uninterrupted: 6 fit iterations straight through the real training
        // loop (internal epoch shuffler and all).
        let mut r1 = StdRng::seed_from_u64(9);
        let model1 = crate::model::DoppelGanger::new(&data, dg.clone(), &mut StdRng::seed_from_u64(1));
        let enc = model1.encode(&data);
        let mut t1 = Trainer::new(model1);
        t1.fit(&enc, 6, &mut r1, |_| {});

        // Interrupted: fit 3, checkpoint through JSON (which now carries the
        // shuffler's order + cursor), resume, fit 3 more on the continuing
        // RNG stream.
        let mut r2 = StdRng::seed_from_u64(9);
        let model2 = crate::model::DoppelGanger::new(&data, dg, &mut StdRng::seed_from_u64(1));
        let mut t2 = Trainer::new(model2);
        t2.fit(&enc, 3, &mut r2, |_| {});
        let json = t2.checkpoint().to_json().expect("serialize");
        let ck = Checkpoint::from_json(&json).expect("roundtrip");
        assert!(ck.batches.is_some(), "fit must leave batch state for the checkpoint");
        let mut t3 = Trainer::resume(ck);
        t3.fit(&enc, 3, &mut r2, |_| {});

        assert_eq!(t1.d_updates, t3.d_updates);
        for (id, _, p1) in t1.model.store.iter() {
            assert_eq!(p1, t3.model.store.get(id), "parameter {:?} diverged after resume", id);
        }
    }

    #[test]
    fn checkpoint_json_is_self_contained() {
        let mut rng = StdRng::seed_from_u64(56);
        let cfg = SineConfig { num_objects: 8, length: 6, periods: vec![3], noise_sigma: 0.0 };
        let data = sine::generate(&cfg, &mut rng);
        let mut dg = DgConfig::quick().with_recommended_s(6);
        dg.attr_hidden = 8;
        dg.lstm_hidden = 8;
        dg.head_hidden = 8;
        dg.disc_hidden = 10;
        dg.disc_depth = 2;
        dg.batch_size = 4;
        let model = crate::model::DoppelGanger::new(&data, dg, &mut rng);
        let enc = model.encode(&data);
        let mut t = Trainer::new(model);
        t.fit(&enc, 2, &mut rng, |_| {});
        let json = t.checkpoint().to_json().expect("serialize");
        let ck = Checkpoint::from_json(&json).expect("parse");
        assert_eq!(ck.d_updates, 2);
        // The restored model can generate immediately.
        let restored = Trainer::resume(ck);
        let objs = crate::sampler::Sampler::new(restored.model).generate(2, &mut rng);
        assert_eq!(objs.len(), 2);
    }

    fn tiny_trainer(seed: u64) -> Trainer {
        let mut rng = StdRng::seed_from_u64(seed);
        let cfg = SineConfig { num_objects: 8, length: 6, periods: vec![3], noise_sigma: 0.0 };
        let data = sine::generate(&cfg, &mut rng);
        let mut dg = DgConfig::quick().with_recommended_s(6);
        dg.attr_hidden = 8;
        dg.lstm_hidden = 8;
        dg.head_hidden = 8;
        dg.disc_hidden = 10;
        dg.disc_depth = 2;
        dg.batch_size = 4;
        let model = crate::model::DoppelGanger::new(&data, dg, &mut rng);
        let enc = model.encode(&data);
        let mut t = Trainer::new(model);
        t.fit(&enc, 1, &mut rng, |_| {});
        t
    }

    #[test]
    fn nonfinite_params_and_moments_roundtrip_bitwise() {
        // A diverged run's snapshot: NaN (with payload), +Inf and -Inf in
        // the parameter store, plus a NaN in an Adam moment. to_json used to
        // panic here; now the round trip preserves exact bit patterns.
        let mut ck = tiny_trainer(57).checkpoint();
        let nan_payload = f32::from_bits(0x7fc0_0abc);
        {
            let t = ck.model.store.tensors_mut().next().expect("model has parameters");
            t.as_mut_slice()[0] = nan_payload;
            t.as_mut_slice()[1] = f32::INFINITY;
        }
        {
            let m = ck.d_opt.moment_tensors_mut().next().expect("fit populated Adam moments");
            m.as_mut_slice()[0] = f32::NEG_INFINITY;
        }
        let before: Vec<Vec<u32>> = {
            let mut probe = ck.clone();
            probe.sections().iter().map(|(_, ts)| flat_bits(ts)).collect()
        };
        let json = ck.to_json().expect("non-finite checkpoint must serialize");
        // All three injected scalars ride in `nonfinite` as explicit bit
        // patterns. (A scalar degrading to JSON `null` instead would make
        // `from_json` below fail: null never parses as f32.)
        assert_eq!(json.matches("\"bits\":").count(), 3, "expected one patch per injected scalar");
        let mut back = Checkpoint::from_json(&json).expect("non-finite checkpoint must parse");
        assert!(back.nonfinite.is_empty(), "patches are consumed on load");
        let after: Vec<Vec<u32>> = back.sections().iter().map(|(_, ts)| flat_bits(ts)).collect();
        assert_eq!(before, after, "every scalar (finite or not) must round-trip bitwise");
        assert_eq!(
            back.model.store.tensors_mut().next().unwrap().as_slice()[0].to_bits(),
            nan_payload.to_bits()
        );
    }

    fn flat_bits(tensors: &[&mut dg_nn::tensor::Tensor]) -> Vec<u32> {
        tensors.iter().flat_map(|t| t.as_slice().iter().map(|x| x.to_bits())).collect()
    }

    #[test]
    fn dp_config_survives_checkpoint_resume() {
        // Regression: DP mode used to be dropped on resume, silently turning
        // a private run non-private.
        let mut t = tiny_trainer(58);
        let dp = crate::dpsgd::DpConfig::moderate();
        t.set_dp(Some(dp));
        let json = t.checkpoint().to_json().expect("serialize");
        let resumed = Trainer::resume(Checkpoint::from_json(&json).expect("parse"));
        assert_eq!(resumed.dp_config(), Some(dp), "resume must restore DP mode");

        // Pre-dp-field checkpoints (no `dp` / `nonfinite` keys at all) still
        // parse thanks to #[serde(default)], resuming as non-DP.
        let current = {
            let mut t2 = tiny_trainer(59);
            t2.set_dp(None);
            t2.checkpoint().to_json().expect("serialize")
        };
        let legacy = current.replace(",\"dp\":null", "").replace(",\"nonfinite\":[]", "");
        assert_ne!(legacy, current, "test must actually strip the new keys");
        let resumed = Trainer::resume(Checkpoint::from_json(&legacy).expect("legacy JSON must parse"));
        assert_eq!(resumed.dp_config(), None);
    }
}
