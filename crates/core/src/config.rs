//! DoppelGANger hyper-parameters and the paper's recommended presets.

use dg_data::EncoderConfig;
use serde::{Deserialize, Serialize};

/// Hyper-parameters of the DoppelGANger model (§4, Appendix B).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct DgConfig {
    /// Feature batch size `S` (§4.1.1): records emitted per LSTM pass. The
    /// paper recommends choosing `S` so the LSTM unrolls ~50 times
    /// ([`DgConfig::recommended_s`]); prior time series GANs use `S = 1`.
    pub feature_batch_size: usize,
    /// Noise width fed to the attribute generator.
    pub attr_noise_dim: usize,
    /// Noise width fed to the min/max generator.
    pub minmax_noise_dim: usize,
    /// Noise width fed to the feature generator at each LSTM step.
    pub feature_noise_dim: usize,
    /// Hidden width of the attribute generator MLP (paper: 100).
    pub attr_hidden: usize,
    /// Hidden depth of the attribute generator MLP (paper: 2).
    pub attr_depth: usize,
    /// Hidden width of the min/max generator MLP (paper: 100).
    pub minmax_hidden: usize,
    /// Hidden depth of the min/max generator MLP (paper: 2).
    pub minmax_depth: usize,
    /// LSTM hidden width of the feature generator (paper: 100).
    pub lstm_hidden: usize,
    /// Hidden width of the MLP head mapping LSTM output to `S` records.
    pub head_hidden: usize,
    /// Hidden width of both discriminators (paper: 200).
    pub disc_hidden: usize,
    /// Hidden depth of both discriminators (paper: 4).
    pub disc_depth: usize,
    /// Enables the auxiliary attribute discriminator (§4.2).
    pub auxiliary_discriminator: bool,
    /// Weight `α` of the auxiliary discriminator's loss (Eq. 2).
    pub alpha: f32,
    /// Gradient-penalty weight `λ` (paper: 10, following Gulrajani et al.).
    pub gp_lambda: f32,
    /// Discriminator learning rate (paper: 0.001).
    pub d_lr: f32,
    /// Generator learning rate (paper: 0.001).
    pub g_lr: f32,
    /// Adam `β1` (WGAN-GP convention: 0.5).
    pub beta1: f32,
    /// Adam `β2` (WGAN-GP convention: 0.9).
    pub beta2: f32,
    /// Minibatch size (paper: 100).
    pub batch_size: usize,
    /// Discriminator updates per generator update.
    pub d_steps_per_g: usize,
    /// Leaky-ReLU slope of the discriminators (must stay piecewise-linear
    /// for the exact gradient penalty — see `dg_nn::penalty`).
    pub disc_leak: f32,
    /// Encoding configuration (auto-normalization toggle, output range).
    pub encoder: EncoderConfig,
}

impl Default for DgConfig {
    fn default() -> Self {
        DgConfig::quick()
    }
}

impl DgConfig {
    /// The paper's Appendix-B configuration: 2x100 MLP generators, 100-unit
    /// LSTM, 4x200 MLP discriminators, Adam(lr = 0.001), batch 100.
    pub fn paper() -> Self {
        DgConfig {
            feature_batch_size: 1, // callers should set via recommended_s(max_len)
            attr_noise_dim: 10,
            minmax_noise_dim: 10,
            feature_noise_dim: 10,
            attr_hidden: 100,
            attr_depth: 2,
            minmax_hidden: 100,
            minmax_depth: 2,
            lstm_hidden: 100,
            head_hidden: 100,
            disc_hidden: 200,
            disc_depth: 4,
            auxiliary_discriminator: true,
            alpha: 1.0,
            gp_lambda: 10.0,
            d_lr: 1e-3,
            g_lr: 1e-3,
            beta1: 0.5,
            beta2: 0.9,
            batch_size: 100,
            d_steps_per_g: 1,
            disc_leak: 0.2,
            encoder: EncoderConfig::default(),
        }
    }

    /// A CPU-scale configuration used by tests and quick experiment presets:
    /// same architecture shape, smaller widths.
    pub fn quick() -> Self {
        DgConfig {
            attr_hidden: 48,
            attr_depth: 2,
            minmax_hidden: 32,
            minmax_depth: 2,
            lstm_hidden: 48,
            head_hidden: 48,
            disc_hidden: 96,
            disc_depth: 3,
            batch_size: 32,
            attr_noise_dim: 8,
            minmax_noise_dim: 8,
            feature_noise_dim: 8,
            ..DgConfig::paper()
        }
    }

    /// The paper's rule of thumb: pick `S` so the LSTM takes about 50 passes
    /// over a length-`max_len` series (§4.4), with a floor of 1.
    pub fn recommended_s(max_len: usize) -> usize {
        max_len.div_ceil(50).max(1)
    }

    /// Sets `feature_batch_size` from the dataset length via
    /// [`DgConfig::recommended_s`].
    pub fn with_recommended_s(mut self, max_len: usize) -> Self {
        self.feature_batch_size = Self::recommended_s(max_len);
        self
    }

    /// Sets `feature_batch_size` explicitly (for the Fig. 4 / Fig. 33 sweep).
    pub fn with_s(mut self, s: usize) -> Self {
        assert!(s > 0, "feature batch size must be positive");
        self.feature_batch_size = s;
        self
    }

    /// Disables auto-normalization (the Fig. 5 "before" configuration).
    pub fn without_auto_normalization(mut self) -> Self {
        self.encoder.auto_normalize = false;
        self
    }

    /// Disables the auxiliary discriminator (the Figs. 34–35 ablation).
    pub fn without_auxiliary_discriminator(mut self) -> Self {
        self.auxiliary_discriminator = false;
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn recommended_s_targets_50_passes() {
        assert_eq!(DgConfig::recommended_s(550), 11);
        assert_eq!(DgConfig::recommended_s(50), 1);
        assert_eq!(DgConfig::recommended_s(51), 2);
        assert_eq!(DgConfig::recommended_s(1), 1);
        assert_eq!(DgConfig::recommended_s(500), 10);
    }

    #[test]
    fn builders_modify_expected_fields() {
        let c = DgConfig::paper().with_recommended_s(550);
        assert_eq!(c.feature_batch_size, 11);
        let c = c.without_auto_normalization();
        assert!(!c.encoder.auto_normalize);
        let c = c.without_auxiliary_discriminator();
        assert!(!c.auxiliary_discriminator);
        let c = c.with_s(25);
        assert_eq!(c.feature_batch_size, 25);
    }

    #[test]
    fn serde_roundtrip() {
        let c = DgConfig::paper();
        let json = serde_json::to_string(&c).unwrap();
        let back: DgConfig = serde_json::from_str(&json).unwrap();
        assert_eq!(c, back);
    }
}
