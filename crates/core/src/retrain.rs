//! Attribute-generator retraining — the paper's flexibility and
//! business-secret mechanisms (§5.2, §5.3.2).
//!
//! After full training, *only* the attribute generator MLP is retrained
//! adversarially so its output matches a user-supplied target attribute
//! distribution. The conditional feature generator (and hence
//! `P(R | A)`) is untouched, so time-series fidelity survives while the
//! marginal attribute distribution changes — used to amplify rare events
//! (flexibility) or to mask a sensitive marginal entirely (privacy,
//! "stronger than ε = 0 differential privacy" on that attribute).
//!
//! Per the paper, the retraining reuses an existing discriminator rather
//! than introducing new parameters: the auxiliary discriminator (which sees
//! `[A | minmax]`) when present, otherwise the primary discriminator with
//! zeros fed to the time-series inputs.

use crate::model::DoppelGanger;
use crate::telemetry::{DivergencePolicy, RunHeader, RunOutcome, TrainError, TrainMonitor};
use crate::trainer::StepMetrics;
use dg_data::{Dataset, Value};
use dg_nn::graph::Graph;
use dg_nn::optim::Adam;
use dg_nn::parallel::num_threads;
use dg_nn::penalty::gradient_penalty;
use dg_nn::tensor::Tensor;
use dg_nn::workspace::Workspace;
use rand::Rng;
use std::time::Instant;

/// A target distribution over attribute combinations.
#[derive(Debug, Clone)]
pub struct AttributeDistribution {
    /// Attribute rows (combinations) that can be drawn.
    pub combos: Vec<Vec<Value>>,
    /// Unnormalized weight of each combination.
    pub weights: Vec<f64>,
}

impl AttributeDistribution {
    /// The empirical attribute distribution of a dataset.
    pub fn from_dataset(dataset: &Dataset) -> Self {
        let mut combos: Vec<Vec<Value>> = Vec::new();
        let mut weights: Vec<f64> = Vec::new();
        for o in &dataset.objects {
            if let Some(i) = combos.iter().position(|c| *c == o.attributes) {
                weights[i] += 1.0;
            } else {
                combos.push(o.attributes.clone());
                weights.push(1.0);
            }
        }
        AttributeDistribution { combos, weights }
    }

    /// An explicit distribution.
    ///
    /// # Panics
    /// Panics if lengths differ, `combos` is empty, or total weight is not
    /// positive.
    pub fn from_weights(combos: Vec<Vec<Value>>, weights: Vec<f64>) -> Self {
        assert_eq!(combos.len(), weights.len(), "combo/weight length mismatch");
        assert!(!combos.is_empty(), "empty attribute distribution");
        assert!(weights.iter().sum::<f64>() > 0.0, "weights must sum to a positive value");
        AttributeDistribution { combos, weights }
    }

    /// Normalized probability of each combination.
    pub fn probabilities(&self) -> Vec<f64> {
        let total: f64 = self.weights.iter().sum();
        self.weights.iter().map(|w| w / total).collect()
    }

    /// Draws `n` attribute rows.
    pub fn sample_rows<R: Rng + ?Sized>(&self, n: usize, rng: &mut R) -> Vec<Vec<Value>> {
        let total: f64 = self.weights.iter().sum();
        (0..n)
            .map(|_| {
                let mut u = rng.gen_range(0.0..total);
                for (c, &w) in self.combos.iter().zip(&self.weights) {
                    if u < w {
                        return c.clone();
                    }
                    u -= w;
                }
                self.combos.last().expect("non-empty").clone()
            })
            .collect()
    }
}

/// Retraining telemetry.
#[derive(Debug, Clone, Copy, Default)]
pub struct RetrainMetrics {
    /// Iteration number.
    pub iteration: usize,
    /// Critic loss on the attribute distribution.
    pub d_loss: f32,
    /// Attribute-generator loss.
    pub g_loss: f32,
}

/// Retrains the attribute generator of `model` toward `target`,
/// leaving the min/max and feature generators untouched.
///
/// Returns the per-iteration metrics. The optimizer state for the attribute
/// generator is fresh (as if retraining from the released checkpoint).
pub fn retrain_attribute_generator<R: Rng + ?Sized>(
    model: &mut DoppelGanger,
    target: &AttributeDistribution,
    iterations: usize,
    rng: &mut R,
) -> Vec<RetrainMetrics> {
    retrain_attribute_generator_monitored(model, target, iterations, rng, &mut TrainMonitor::disabled())
        .expect("a disabled monitor has no watchdog, so retraining cannot fail")
}

/// [`retrain_attribute_generator`] with run-log and watchdog support.
///
/// Emits the same JSONL event stream as
/// [`crate::Trainer::fit_monitored`]: a header, one iteration event per
/// step (`gp`/`wasserstein` are not computed separately here and are logged
/// as `null`), heartbeats, and an end summary. The watchdog checks the two
/// retraining losses every iteration and the parameter store at its
/// configured cadence. Retraining mutates a bare [`DoppelGanger`] — there
/// is no [`crate::checkpoint::Checkpoint`] to roll back to — so
/// [`DivergencePolicy::RollbackToCheckpoint`] degrades to an abort here.
pub fn retrain_attribute_generator_monitored<R: Rng + ?Sized>(
    model: &mut DoppelGanger,
    target: &AttributeDistribution,
    iterations: usize,
    rng: &mut R,
    monitor: &mut TrainMonitor,
) -> Result<Vec<RetrainMetrics>, TrainError> {
    let c = &model.config;
    let batch = c.batch_size;
    let mut d_opt = Adam::with_betas(c.d_lr, c.beta1, c.beta2);
    let mut g_opt = Adam::with_betas(c.g_lr, c.beta1, c.beta2);
    let lambda = c.gp_lambda;
    let use_aux = model.aux_disc.is_some();
    let feat_zero_width = if use_aux { 0 } else { model.encoder.max_len() * model.encoder.step_width() };

    let started = Instant::now();
    monitor.emit_header(|label, seed| RunHeader {
        label,
        seed,
        iterations,
        num_samples: target.combos.len(),
        batch_size: batch,
        d_steps_per_g: 1,
        threads: num_threads(),
        dp: false,
    });
    let mut metrics = Vec::with_capacity(iterations);
    // One pool serves all four graphs of every iteration (two samplers, the
    // critic step, the attribute-generator step).
    let mut ws = Workspace::new();
    for it in 0..iterations {
        let d_started = Instant::now();
        // ---- critic step on [A | minmax(A)] (aux) or [A | minmax | 0] ----
        let real_rows = target.sample_rows(batch, rng);
        let real_attrs = model.encoder.encode_attribute_rows(&real_rows);
        let real_am = attach_minmax(model, &real_attrs, rng, &mut ws);
        let fake_attrs = frozen_attrs(model, batch, rng, &mut ws);
        let fake_am = attach_minmax(model, &fake_attrs, rng, &mut ws);
        let gen_ms = d_started.elapsed().as_secs_f64() * 1e3;
        let (real_in, fake_in) = if use_aux {
            (real_am.clone(), fake_am.clone())
        } else {
            let pad = Tensor::zeros(batch, feat_zero_width);
            (Tensor::concat_cols(&[&real_am, &pad]), Tensor::concat_cols(&[&fake_am, &pad]))
        };
        let critic = if use_aux { model.aux_disc.as_ref().expect("aux") } else { &model.disc };
        let d_loss = {
            let mut g = Graph::with_workspace(std::mem::take(&mut ws));
            let rv = g.constant(real_in.clone());
            let fv = g.constant(fake_in.clone());
            let dr = critic.forward(&mut g, &model.store, rv);
            let df = critic.forward(&mut g, &model.store, fv);
            let mr = g.mean_all(dr);
            let mf = g.mean_all(df);
            let w = g.sub(mf, mr);
            let gp = gradient_penalty(&mut g, &model.store, critic, &real_in, &fake_in, rng);
            let gp_term = g.scale(gp, lambda);
            let loss = g.add(w, gp_term);
            let v = g.value(loss).get(0, 0);
            g.backward(loss);
            let grads = g.param_grads();
            ws = g.finish();
            d_opt.step(&mut model.store, &grads);
            v
        };
        let d_ms = d_started.elapsed().as_secs_f64() * 1e3;

        // ---- attribute-generator step ----
        let g_started = Instant::now();
        let g_loss = {
            let mut g = Graph::with_workspace(std::mem::take(&mut ws));
            let attrs = model.gen_attributes(&mut g, batch, rng, false);
            let minmax = model.gen_minmax(&mut g, attrs, rng, true);
            let am = if g.value(minmax).cols() > 0 { g.concat_cols(&[attrs, minmax]) } else { attrs };
            let score = if use_aux {
                model.discriminate_aux(&mut g, am, true)
            } else {
                let pad = g.constant_zeros(batch, feat_zero_width);
                let full = g.concat_cols(&[am, pad]);
                model.discriminate(&mut g, full, true)
            };
            let ms = g.mean_all(score);
            let loss = g.scale(ms, -1.0);
            let v = g.value(loss).get(0, 0);
            g.backward(loss);
            let grads = g.param_grads();
            ws = g.finish();
            g_opt.step(&mut model.store, &grads);
            v
        };
        let g_ms = g_started.elapsed().as_secs_f64() * 1e3;
        metrics.push(RetrainMetrics { iteration: it, d_loss, g_loss });
        // gp/wasserstein are not computed separately in retraining; NaN maps
        // to `null` in the log (the "not applicable" encoding).
        monitor.emit_iteration(&StepMetrics {
            iteration: it,
            d_loss,
            g_loss,
            gp: f32::NAN,
            wasserstein: f32::NAN,
            d_ms,
            g_ms,
            gen_ms,
        });
        let losses = [("d_loss", d_loss), ("g_loss", g_loss)];
        if let Some((detail, action)) = monitor.watchdog_inspect(it, &losses, &model.store) {
            match action {
                DivergencePolicy::Warn => {}
                DivergencePolicy::Abort | DivergencePolicy::RollbackToCheckpoint => {
                    monitor.emit_end(it + 1, started, RunOutcome::Aborted);
                    return Err(TrainError::Diverged { iteration: it, detail });
                }
            }
        }
        monitor.maybe_heartbeat(it, iterations, started, ws.stats());
    }
    let outcome =
        if monitor.first_divergence().is_some() { RunOutcome::DivergedWarned } else { RunOutcome::Completed };
    monitor.emit_end(iterations, started, outcome);
    Ok(metrics)
}

/// Generates min/max fake attributes for given encoded attribute rows with
/// the frozen min/max generator, returning `[attrs | minmax]`.
fn attach_minmax<R: Rng + ?Sized>(
    model: &DoppelGanger,
    attrs: &Tensor,
    rng: &mut R,
    ws: &mut Workspace,
) -> Tensor {
    if model.minmax_gen.is_none() {
        return attrs.clone();
    }
    let mut g = Graph::with_workspace(std::mem::take(ws));
    let a = g.constant_copied(attrs);
    let m = model.gen_minmax(&mut g, a, rng, true);
    let out = Tensor::concat_cols(&[attrs, g.value(m)]);
    *ws = g.finish();
    out
}

/// Samples encoded attributes from the frozen attribute generator.
fn frozen_attrs<R: Rng + ?Sized>(
    model: &DoppelGanger,
    batch: usize,
    rng: &mut R,
    ws: &mut Workspace,
) -> Tensor {
    let mut g = Graph::with_workspace(std::mem::take(ws));
    let a = model.gen_attributes(&mut g, batch, rng, true);
    let out = g.take_value(a);
    *ws = g.finish();
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::DgConfig;
    use dg_datasets::sine::{self, SineConfig};
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn empirical_distribution_counts_combos() {
        let mut rng = StdRng::seed_from_u64(1);
        let cfg = SineConfig { num_objects: 50, length: 8, periods: vec![4, 8], noise_sigma: 0.0 };
        let data = sine::generate(&cfg, &mut rng);
        let dist = AttributeDistribution::from_dataset(&data);
        assert_eq!(dist.combos.len(), 2);
        let probs = dist.probabilities();
        assert!((probs.iter().sum::<f64>() - 1.0).abs() < 1e-9);
    }

    #[test]
    fn sample_rows_respects_weights() {
        let dist = AttributeDistribution::from_weights(
            vec![vec![Value::Cat(0)], vec![Value::Cat(1)]],
            vec![9.0, 1.0],
        );
        let mut rng = StdRng::seed_from_u64(2);
        let rows = dist.sample_rows(2000, &mut rng);
        let zeros = rows.iter().filter(|r| r[0] == Value::Cat(0)).count();
        let p = zeros as f64 / 2000.0;
        assert!((p - 0.9).abs() < 0.04, "p = {p}");
    }

    #[test]
    fn retraining_shifts_attribute_marginal_without_touching_features() {
        let mut rng = StdRng::seed_from_u64(3);
        let cfg = SineConfig { num_objects: 40, length: 12, periods: vec![4, 8], noise_sigma: 0.05 };
        let data = sine::generate(&cfg, &mut rng);
        let mut dg = DgConfig::quick().with_recommended_s(12);
        dg.attr_hidden = 16;
        dg.lstm_hidden = 12;
        dg.head_hidden = 12;
        dg.disc_hidden = 24;
        dg.disc_depth = 2;
        dg.batch_size = 16;
        let mut model = DoppelGanger::new(&data, dg, &mut rng);

        // Record feature-generator weights before retraining.
        let feat_before: Vec<_> = model
            .feat_lstm
            .params()
            .iter()
            .chain(model.feat_head.params().iter())
            .map(|&id| model.store.get(id).clone())
            .collect();

        // Retrain to an impulse distribution: everything becomes class 1.
        let target = AttributeDistribution::from_weights(vec![vec![Value::Cat(1)]], vec![1.0]);
        let metrics = retrain_attribute_generator(&mut model, &target, 150, &mut rng);
        assert_eq!(metrics.len(), 150);
        assert!(metrics.iter().all(|m| m.d_loss.is_finite() && m.g_loss.is_finite()));

        // Feature generator untouched.
        for (t, &id) in
            feat_before.iter().zip(model.feat_lstm.params().iter().chain(model.feat_head.params().iter()))
        {
            assert_eq!(t, model.store.get(id), "feature generator changed during retraining");
        }

        // The attribute marginal should now be heavily class-1.
        let objs = crate::sampler::Sampler::new(model.clone()).generate(100, &mut rng);
        let ones = objs.iter().filter(|o| o.attributes[0] == Value::Cat(1)).count();
        assert!(ones >= 75, "expected impulse retraining to dominate class 1, got {ones}/100");
    }

    #[test]
    fn monitored_retraining_logs_events_and_aborts_on_divergence() {
        use crate::telemetry::{RunEvent, RunLog, RunOutcome, Watchdog};

        let mut rng = StdRng::seed_from_u64(4);
        let cfg = SineConfig { num_objects: 20, length: 8, periods: vec![4, 8], noise_sigma: 0.05 };
        let data = sine::generate(&cfg, &mut rng);
        let mut dg = DgConfig::quick().with_recommended_s(8);
        dg.attr_hidden = 8;
        dg.lstm_hidden = 8;
        dg.head_hidden = 8;
        dg.disc_hidden = 12;
        dg.disc_depth = 2;
        dg.batch_size = 8;
        let mut model = DoppelGanger::new(&data, dg, &mut rng);
        let target = AttributeDistribution::from_dataset(&data);

        // Healthy run: header + one event per iteration + end summary.
        let (log, buf) = RunLog::in_memory();
        let mut mon = TrainMonitor::new().with_log(log).with_label("retrain");
        let metrics =
            retrain_attribute_generator_monitored(&mut model, &target, 3, &mut rng, &mut mon).expect("ok");
        assert_eq!(metrics.len(), 3);
        let events = crate::telemetry::parse_jsonl(&buf.contents()).expect("parse");
        assert!(matches!(&events[0], RunEvent::Header(h) if h.label == "retrain"));
        let iters: Vec<_> = events.iter().filter(|e| matches!(e, RunEvent::Iteration(_))).collect();
        assert_eq!(iters.len(), 3);
        if let RunEvent::Iteration(ev) = iters[0] {
            assert!(ev.d_loss.is_some() && ev.g_loss.is_some());
            assert_eq!(ev.gp, None, "retraining has no gp; logged as null");
        }
        assert!(matches!(events.last(), Some(RunEvent::End(e)) if e.outcome == RunOutcome::Completed));

        // Diverged run: poison an attribute-generator weight; the watchdog
        // aborts (rollback is unsupported here and also aborts).
        let id = model.attr_gen.params()[0];
        model.store.get_mut(id).set(0, 0, f32::NAN);
        let mut mon = TrainMonitor::new()
            .with_watchdog(Watchdog::with_policy(crate::telemetry::DivergencePolicy::Abort));
        let err = retrain_attribute_generator_monitored(&mut model, &target, 3, &mut rng, &mut mon)
            .expect_err("NaN weight must abort retraining");
        let crate::telemetry::TrainError::Diverged { iteration, .. } = err else {
            panic!("expected a divergence error")
        };
        assert_eq!(iteration, 0);
    }
}
