//! Training-run observability: structured JSONL run logs and a divergence
//! watchdog.
//!
//! The paper trains WGAN-GP for up to 200k batches (Appendix B), and GAN
//! instability is a headline challenge of the whole line of work — long runs
//! need to be observable, and a diverged run (NaN/Inf losses or parameters)
//! must surface as a *reported, recoverable event*, not a crash at
//! checkpoint time.
//!
//! Three pieces:
//!
//! * [`RunLog`] — an append-only JSONL sink. One line per [`RunEvent`]: a
//!   run header (config, seed, thread count), one event per iteration
//!   (losses plus per-phase wall time), periodic heartbeats (throughput,
//!   ETA, [`WorkspaceStats`]), divergence reports, and a run-end summary.
//! * [`Watchdog`] — scans iteration losses every step and the parameter
//!   store every [`WatchdogConfig::check_every`] steps for non-finite
//!   values, then applies a [`DivergencePolicy`]: log-and-continue
//!   ([`DivergencePolicy::Warn`]), stop with a clean
//!   [`TrainError::Diverged`] ([`DivergencePolicy::Abort`]), or restore the
//!   last healthy snapshot ([`DivergencePolicy::RollbackToCheckpoint`]).
//! * [`TrainMonitor`] — the bundle a training loop threads through:
//!   optional log, optional watchdog, heartbeat cadence, and an optional
//!   periodic checkpoint sink. [`crate::Trainer::fit_monitored`], attribute
//!   retraining, and the naive-GAN/RNN baselines all drive the same
//!   monitor API.
//!
//! ## Serialization notes
//!
//! Events are (de)serialized with plain serde derives only (externally
//! tagged enums, `#[serde(default)]`), so the JSONL format is identical
//! under real `serde_json` and the offline stub harness. Non-finite `f32`
//! metrics are carried as `Option<f32>` — `null` on the wire — so a log
//! that records a divergence still parses line-for-line; the exact bit
//! pattern of the offending scalar is reported in the divergence event's
//! `detail` string, and checkpoints preserve it losslessly (see
//! [`crate::checkpoint::Checkpoint::to_json`]).

use crate::checkpoint::Checkpoint;
use crate::trainer::StepMetrics;
use dg_nn::params::ParamStore;
use dg_nn::workspace::WorkspaceStats;
use serde::{Deserialize, Serialize};
use std::io::Write;
use std::sync::{Arc, Mutex};
use std::time::Instant;

// ---- events ------------------------------------------------------------

/// One line of a run log. Externally tagged: `{"Iteration": {...}}`.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum RunEvent {
    /// First line of a run: static configuration.
    Header(RunHeader),
    /// One training iteration.
    Iteration(IterationEvent),
    /// Periodic progress/throughput line.
    Heartbeat(HeartbeatEvent),
    /// The watchdog found non-finite values.
    Divergence(DivergenceEvent),
    /// A periodic checkpoint write failed (training continues until the
    /// consecutive-failure budget runs out).
    CheckpointFailure(CheckpointFailureEvent),
    /// The run resumed from a durable checkpoint instead of starting fresh.
    Resumed(ResumedEvent),
    /// Periodic serving-engine counters (`dg serve`).
    ServingHeartbeat(ServingHeartbeatEvent),
    /// The serving engine hot-reloaded (or failed to resolve) a release.
    ModelReload(ModelReloadEvent),
    /// Last line of a run.
    End(RunEndEvent),
}

/// Periodic serving-engine counters, one line per heartbeat interval.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ServingHeartbeatEvent {
    /// Milliseconds since the server started.
    pub elapsed_ms: f64,
    /// Requests served so far.
    pub requests: u64,
    /// Fused generation passes executed so far.
    pub batches: u64,
    /// Synthetic objects generated so far.
    pub samples: u64,
    /// Requests rejected at validation so far.
    pub rejected: u64,
    /// Median request latency over the engine's bounded latency window
    /// (see `ServeStats`), milliseconds.
    pub p50_ms: f64,
    /// 99th-percentile request latency over the same window, milliseconds.
    pub p99_ms: f64,
    /// Numeric precision generation runs at (`"f32"` / `"bf16"`).
    /// Defaults to `"f32"` when absent, so logs written before the
    /// reduced-precision tier existed still parse.
    #[serde(default = "default_precision")]
    pub precision: String,
    /// Engine health at heartbeat time (`"ok"` / `"degraded"` /
    /// `"draining"`). Defaults to `"ok"` when absent, so logs written
    /// before the health state existed still parse.
    #[serde(default = "default_health")]
    pub health: String,
    /// Requests shed at admission because the queue was past the shed
    /// threshold. Defaults keep pre-admission-control logs parsing.
    #[serde(default)]
    pub shed: u64,
    /// Requests dropped at dequeue because their deadline had already
    /// expired while queued.
    #[serde(default)]
    pub deadline_expired: u64,
    /// Fused generation passes that panicked and were isolated to their
    /// own requests.
    #[serde(default)]
    pub pass_panics: u64,
    /// Generation-plan cache hits so far: row-chunks served by replaying
    /// an already-recorded tape. Defaults keep pre-plan-cache logs
    /// parsing.
    #[serde(default)]
    pub plan_cache_hits: u64,
    /// Generation-plan cache misses so far: row-chunks that recorded a
    /// fresh tape.
    #[serde(default)]
    pub plan_cache_misses: u64,
}

fn default_precision() -> String {
    "f32".to_string()
}

fn default_health() -> String {
    "ok".to_string()
}

/// A hot-reload attempt by the serving engine.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ModelReloadEvent {
    /// Whether a different release was installed.
    pub reloaded: bool,
    /// Artifact sequence number now serving (absent when resolution
    /// failed and the previous release stayed in place).
    pub seq: Option<u64>,
    /// Skip reasons for candidates the resolution rejected (corrupt
    /// pointer, dangling target, invalid payload).
    #[serde(default)]
    pub skipped: Vec<String>,
}

/// A failed periodic checkpoint write. Formerly these were silently
/// swallowed, leaving long runs training with no safety net.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct CheckpointFailureEvent {
    /// Iteration whose checkpoint failed to persist.
    pub iteration: usize,
    /// Consecutive failures so far (resets on any success).
    pub consecutive: usize,
    /// The storage layer's error message.
    pub detail: String,
}

/// The run picked up from a durable checkpoint.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ResumedEvent {
    /// Completed iterations restored from the snapshot.
    pub iteration: usize,
    /// Path of the checkpoint file that validated.
    pub checkpoint: String,
    /// Newer checkpoint candidates skipped as truncated/corrupt.
    pub skipped: usize,
}

/// Static run configuration, logged once per `fit` call.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct RunHeader {
    /// Free-form run label (e.g. `"dg train"`).
    pub label: String,
    /// RNG seed, when the caller knows it (the trainer itself only sees an
    /// already-seeded RNG).
    pub seed: Option<u64>,
    /// Planned iteration count of this run.
    pub iterations: usize,
    /// Training-set size in samples.
    pub num_samples: usize,
    /// Minibatch size.
    pub batch_size: usize,
    /// Discriminator updates per generator update.
    pub d_steps_per_g: usize,
    /// Worker-thread count (`DG_NUM_THREADS` honored).
    pub threads: usize,
    /// Whether DP-SGD is active on the discriminator.
    pub dp: bool,
}

/// Per-iteration losses and per-phase wall time.
///
/// Loss fields are `None` when the value was non-finite (JSON has no
/// NaN/Inf literal) or not applicable for the loop that logged it — the RNN
/// baseline, for example, only has a generator-side loss.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct IterationEvent {
    /// Iteration number (0-based).
    pub iteration: usize,
    /// Discriminator loss, averaged over the iteration's critic steps.
    pub d_loss: Option<f32>,
    /// Generator loss.
    pub g_loss: Option<f32>,
    /// Gradient penalty of the primary critic.
    pub gp: Option<f32>,
    /// Wasserstein-distance estimate.
    pub wasserstein: Option<f32>,
    /// Wall time of the discriminator phase (includes `gen_ms`).
    pub d_ms: f64,
    /// Wall time of the generator phase.
    pub g_ms: f64,
    /// Wall time spent generating fake batches inside the d phase.
    pub gen_ms: f64,
}

impl IterationEvent {
    /// Builds an event from trainer step metrics, mapping non-finite losses
    /// to `None`.
    pub fn from_step(m: &StepMetrics) -> Self {
        IterationEvent {
            iteration: m.iteration,
            d_loss: finite(m.d_loss),
            g_loss: finite(m.g_loss),
            gp: finite(m.gp),
            wasserstein: finite(m.wasserstein),
            d_ms: m.d_ms,
            g_ms: m.g_ms,
            gen_ms: m.gen_ms,
        }
    }
}

/// `Some(x)` when finite, `None` otherwise (for JSON transport).
pub fn finite(x: f32) -> Option<f32> {
    x.is_finite().then_some(x)
}

/// Periodic throughput/ETA line.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct HeartbeatEvent {
    /// Last completed iteration (0-based).
    pub iteration: usize,
    /// Wall time since the run started.
    pub elapsed_ms: f64,
    /// Completed iterations per second so far.
    pub iters_per_sec: f64,
    /// Estimated wall time to finish the remaining iterations.
    pub eta_ms: f64,
    /// Buffer-pool counters of the step workspace.
    pub workspace: WorkspaceStats,
}

/// A watchdog detection: something went non-finite.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct DivergenceEvent {
    /// Iteration at which the divergence was detected.
    pub iteration: usize,
    /// Human-readable finding, including the first offending scalar's bit
    /// pattern for parameter-store findings.
    pub detail: String,
    /// The policy applied in response.
    pub action: DivergencePolicy,
}

/// Run summary, always the last event of a run.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct RunEndEvent {
    /// Iterations actually executed (≤ the header's plan).
    pub iterations_run: usize,
    /// Total wall time of the run.
    pub wall_ms: f64,
    /// How the run ended.
    pub outcome: RunOutcome,
}

/// Terminal state of a training run.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum RunOutcome {
    /// All planned iterations ran and stayed finite.
    Completed,
    /// Divergence was detected under [`DivergencePolicy::Warn`]; the run
    /// continued to the end regardless.
    DivergedWarned,
    /// Divergence under [`DivergencePolicy::Abort`] (or a rollback with no
    /// snapshot available); the run stopped with [`TrainError::Diverged`].
    Aborted,
    /// Divergence under [`DivergencePolicy::RollbackToCheckpoint`]; the
    /// trainer was restored to the last healthy snapshot and the run
    /// stopped early.
    RolledBack,
}

// ---- run log -----------------------------------------------------------

/// Append-only JSONL sink for [`RunEvent`]s.
///
/// An I/O error never interrupts training: a failed line is retried up to
/// [`RunLog::with_retries`] times with a short exponential backoff
/// (transient errors — a rotating log shipper, a briefly-full pipe — used
/// to silently drop events); only after the retry budget is spent does the
/// event count as dropped in [`RunLog::write_failures`]. Every line is
/// flushed so `tail -f` (and post-crash inspection) sees events as they
/// happen.
pub struct RunLog {
    out: Box<dyn Write + Send>,
    events_written: u64,
    write_failures: u64,
    retried_writes: u64,
    max_retries: u32,
}

impl std::fmt::Debug for RunLog {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("RunLog")
            .field("events_written", &self.events_written)
            .field("write_failures", &self.write_failures)
            .field("retried_writes", &self.retried_writes)
            .field("max_retries", &self.max_retries)
            .finish()
    }
}

impl RunLog {
    /// Creates (truncating) a JSONL log file at `path`.
    pub fn create(path: impl AsRef<std::path::Path>) -> std::io::Result<Self> {
        let file = std::fs::File::create(path)?;
        Ok(Self::to_writer(Box::new(std::io::BufWriter::new(file))))
    }

    /// Wraps any writer as a run log.
    pub fn to_writer(out: Box<dyn Write + Send>) -> Self {
        RunLog { out, events_written: 0, write_failures: 0, retried_writes: 0, max_retries: 2 }
    }

    /// Sets how many times a failed line write is retried before the event
    /// is counted as dropped (default 2; backoff doubles per attempt from
    /// 1 ms).
    pub fn with_retries(mut self, max_retries: u32) -> Self {
        self.max_retries = max_retries;
        self
    }

    /// An in-memory log plus a handle to read its contents back (tests,
    /// in-process tooling).
    pub fn in_memory() -> (Self, SharedBuf) {
        let buf = SharedBuf::default();
        (Self::to_writer(Box::new(buf.clone())), buf)
    }

    /// Appends one event as a JSON line, retrying transient write failures
    /// with bounded backoff.
    pub fn emit(&mut self, event: &RunEvent) {
        let Ok(line) = serde_json::to_string(event) else {
            self.write_failures += 1;
            return;
        };
        for attempt in 0..=self.max_retries {
            if attempt > 0 {
                self.retried_writes += 1;
                std::thread::sleep(std::time::Duration::from_millis(1u64 << (attempt - 1)));
            }
            if writeln!(self.out, "{line}").and_then(|()| self.out.flush()).is_ok() {
                self.events_written += 1;
                return;
            }
        }
        self.write_failures += 1;
    }

    /// Events successfully written so far.
    pub fn events_written(&self) -> u64 {
        self.events_written
    }

    /// Events dropped after exhausting the retry budget (plus
    /// serialization failures).
    pub fn write_failures(&self) -> u64 {
        self.write_failures
    }

    /// Retry attempts performed so far (0 on a healthy sink).
    pub fn retried_writes(&self) -> u64 {
        self.retried_writes
    }
}

/// A clonable in-memory byte buffer implementing [`Write`] (the read side
/// of [`RunLog::in_memory`]).
#[derive(Debug, Clone, Default)]
pub struct SharedBuf(Arc<Mutex<Vec<u8>>>);

impl SharedBuf {
    /// The UTF-8 contents written so far.
    pub fn contents(&self) -> String {
        String::from_utf8_lossy(&self.0.lock().expect("log buffer poisoned")).into_owned()
    }
}

impl Write for SharedBuf {
    fn write(&mut self, buf: &[u8]) -> std::io::Result<usize> {
        self.0.lock().expect("log buffer poisoned").extend_from_slice(buf);
        Ok(buf.len())
    }

    fn flush(&mut self) -> std::io::Result<()> {
        Ok(())
    }
}

/// Parses a JSONL run log back into events (blank lines skipped).
pub fn parse_jsonl(text: &str) -> Result<Vec<RunEvent>, serde_json::Error> {
    text.lines().map(str::trim).filter(|l| !l.is_empty()).map(serde_json::from_str).collect()
}

// ---- watchdog ----------------------------------------------------------

/// What to do when the watchdog finds non-finite values.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum DivergencePolicy {
    /// Log the event and keep training.
    Warn,
    /// Stop with a clean [`TrainError::Diverged`] — the default: a diverged
    /// run should fail loudly, not silently write NaN parameters.
    Abort,
    /// Restore the last healthy snapshot and stop the run early (falls back
    /// to `Abort` behavior when no snapshot exists yet, e.g. in training
    /// loops that don't support checkpoints).
    RollbackToCheckpoint,
}

impl std::str::FromStr for DivergencePolicy {
    type Err = String;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        match s {
            "warn" => Ok(DivergencePolicy::Warn),
            "abort" => Ok(DivergencePolicy::Abort),
            "rollback" => Ok(DivergencePolicy::RollbackToCheckpoint),
            other => Err(format!("unknown divergence policy '{other}' (expected warn|abort|rollback)")),
        }
    }
}

/// Watchdog cadence and policy.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct WatchdogConfig {
    /// Scan the parameter store (and, under rollback, snapshot it when
    /// healthy) every this many iterations. Losses are checked every
    /// iteration regardless — they are four floats.
    pub check_every: usize,
    /// Response to a detection.
    pub policy: DivergencePolicy,
}

impl Default for WatchdogConfig {
    fn default() -> Self {
        WatchdogConfig { check_every: 25, policy: DivergencePolicy::Abort }
    }
}

/// Scans losses and parameter stores for non-finite values and holds the
/// rollback snapshot for [`DivergencePolicy::RollbackToCheckpoint`].
#[derive(Debug)]
pub struct Watchdog {
    cfg: WatchdogConfig,
    snapshot: Option<Checkpoint>,
    first_divergence: Option<usize>,
}

impl Watchdog {
    /// Creates a watchdog with an explicit configuration.
    pub fn new(cfg: WatchdogConfig) -> Self {
        Watchdog { cfg, snapshot: None, first_divergence: None }
    }

    /// Creates a watchdog with the default cadence and the given policy.
    pub fn with_policy(policy: DivergencePolicy) -> Self {
        Self::new(WatchdogConfig { policy, ..WatchdogConfig::default() })
    }

    /// The configured policy.
    pub fn policy(&self) -> DivergencePolicy {
        self.cfg.policy
    }

    /// Iteration of the first detection in this watchdog's lifetime, if any.
    pub fn first_divergence(&self) -> Option<usize> {
        self.first_divergence
    }

    /// Checks the iteration's losses (always) and the parameter store (at
    /// the configured cadence). Returns the finding, if any, and records the
    /// first detection.
    pub fn inspect(&mut self, it: usize, losses: &[(&str, f32)], store: &ParamStore) -> Option<String> {
        let finding = Self::losses_finding(losses).or_else(|| {
            if it.is_multiple_of(self.cfg.check_every) {
                Self::store_finding(store)
            } else {
                None
            }
        });
        if finding.is_some() && self.first_divergence.is_none() {
            self.first_divergence = Some(it);
        }
        finding
    }

    /// First non-finite named loss, if any.
    pub fn losses_finding(losses: &[(&str, f32)]) -> Option<String> {
        losses
            .iter()
            .find(|(_, v)| !v.is_finite())
            .map(|(name, v)| format!("loss `{name}` is {}", classify(*v)))
    }

    /// First parameter tensor holding a non-finite scalar, if any, with the
    /// scalar's position and exact bit pattern.
    pub fn store_finding(store: &ParamStore) -> Option<String> {
        for (_, name, t) in store.iter() {
            if let Some(i) = t.as_slice().iter().position(|x| !x.is_finite()) {
                let x = t.as_slice()[i];
                return Some(format!(
                    "parameter `{name}` has non-finite values (first {} at scalar {i}, bits 0x{:08x})",
                    classify(x),
                    x.to_bits()
                ));
            }
        }
        None
    }

    /// True when a healthy-state snapshot should be taken this iteration
    /// (rollback policy only, same cadence as the store scan).
    pub fn wants_snapshot(&self, it: usize) -> bool {
        self.cfg.policy == DivergencePolicy::RollbackToCheckpoint && it.is_multiple_of(self.cfg.check_every)
    }

    /// Stores the rollback snapshot (replacing any previous one).
    pub fn store_snapshot(&mut self, ck: Checkpoint) {
        self.snapshot = Some(ck);
    }

    /// Takes the rollback snapshot, leaving the watchdog without one.
    pub fn take_snapshot(&mut self) -> Option<Checkpoint> {
        self.snapshot.take()
    }
}

fn classify(x: f32) -> &'static str {
    if x.is_nan() {
        "NaN"
    } else if x == f32::INFINITY {
        "+Inf"
    } else if x == f32::NEG_INFINITY {
        "-Inf"
    } else {
        "finite"
    }
}

// ---- outcomes and errors -----------------------------------------------

/// How a monitored fit ended (the `Ok` side of
/// [`crate::Trainer::fit_monitored`]).
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum FitOutcome {
    /// All planned iterations ran.
    Completed,
    /// Divergence detected under [`DivergencePolicy::Warn`]; training
    /// continued to the end (parameters are likely non-finite).
    DivergedWarned {
        /// Iteration of the first detection.
        first_iteration: usize,
    },
    /// Divergence detected under
    /// [`DivergencePolicy::RollbackToCheckpoint`]; the trainer was restored
    /// and the run stopped early.
    RolledBack {
        /// Iteration at which the divergence was detected.
        detected_at: usize,
        /// `d_updates` counter of the restored snapshot.
        restored_d_updates: usize,
    },
}

/// Result summary of a monitored fit.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FitReport {
    /// Iterations actually executed.
    pub iterations_run: usize,
    /// Terminal state.
    pub outcome: FitOutcome,
}

/// A training run failed in a controlled way.
#[derive(Debug, Clone, PartialEq)]
pub enum TrainError {
    /// The watchdog detected non-finite values under
    /// [`DivergencePolicy::Abort`] (or a rollback without a snapshot).
    Diverged {
        /// Iteration at which the divergence was detected.
        iteration: usize,
        /// The watchdog's finding.
        detail: String,
    },
    /// Periodic checkpoint persistence failed too many times in a row —
    /// training on with no durable safety net would turn the next crash
    /// into unbounded lost work, so the run stops instead.
    CheckpointFailed {
        /// Iteration of the final failed write.
        iteration: usize,
        /// Consecutive failures at that point.
        consecutive: usize,
        /// The storage layer's last error message.
        detail: String,
    },
}

impl std::fmt::Display for TrainError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            TrainError::Diverged { iteration, detail } => {
                write!(f, "training diverged at iteration {iteration}: {detail}")
            }
            TrainError::CheckpointFailed { iteration, consecutive, detail } => {
                write!(
                    f,
                    "aborting at iteration {iteration}: {consecutive} consecutive checkpoint \
                     write failures (last: {detail})"
                )
            }
        }
    }
}

impl std::error::Error for TrainError {}

// ---- monitor -----------------------------------------------------------

/// Receiver for periodic checkpoints (see
/// [`TrainMonitor::with_checkpoint_sink`]). Receives the 0-based iteration
/// the checkpoint was taken after, and reports persistence failures as an
/// error message instead of swallowing them.
pub type CheckpointSink = Box<dyn FnMut(usize, &Checkpoint) -> Result<(), String> + Send>;

/// Everything a training loop threads through for observability: optional
/// [`RunLog`], optional [`Watchdog`], heartbeat cadence, and an optional
/// periodic checkpoint sink.
///
/// [`TrainMonitor::disabled`] is a guaranteed no-op (the plain
/// [`crate::Trainer::fit`] path), and a monitor adds no RNG draws, so
/// monitored and unmonitored runs follow bitwise-identical parameter
/// trajectories.
pub struct TrainMonitor {
    log: Option<RunLog>,
    watchdog: Option<Watchdog>,
    heartbeat_every: usize,
    checkpoint_every: usize,
    checkpoint_sink: Option<CheckpointSink>,
    checkpoint_failures: usize,
    max_checkpoint_failures: usize,
    label: String,
    seed: Option<u64>,
}

impl std::fmt::Debug for TrainMonitor {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("TrainMonitor")
            .field("log", &self.log)
            .field("watchdog", &self.watchdog)
            .field("heartbeat_every", &self.heartbeat_every)
            .field("checkpoint_every", &self.checkpoint_every)
            .field("label", &self.label)
            .field("seed", &self.seed)
            .finish()
    }
}

impl Default for TrainMonitor {
    fn default() -> Self {
        Self::disabled()
    }
}

impl TrainMonitor {
    /// A monitor that does nothing (no log, no watchdog, no checkpoints).
    pub fn disabled() -> Self {
        TrainMonitor {
            log: None,
            watchdog: None,
            heartbeat_every: 50,
            checkpoint_every: 0,
            checkpoint_sink: None,
            checkpoint_failures: 0,
            max_checkpoint_failures: 3,
            label: String::new(),
            seed: None,
        }
    }

    /// Alias of [`TrainMonitor::disabled`], for builder-style setup.
    pub fn new() -> Self {
        Self::disabled()
    }

    /// Attaches a run log.
    pub fn with_log(mut self, log: RunLog) -> Self {
        self.log = Some(log);
        self
    }

    /// Attaches a watchdog.
    pub fn with_watchdog(mut self, watchdog: Watchdog) -> Self {
        self.watchdog = Some(watchdog);
        self
    }

    /// Sets the heartbeat cadence in iterations (0 disables heartbeats).
    pub fn with_heartbeat_every(mut self, every: usize) -> Self {
        self.heartbeat_every = every;
        self
    }

    /// Sets the run label written to the header event.
    pub fn with_label(mut self, label: impl Into<String>) -> Self {
        self.label = label.into();
        self
    }

    /// Records the RNG seed for the header event.
    pub fn with_seed(mut self, seed: u64) -> Self {
        self.seed = Some(seed);
        self
    }

    /// Delivers a [`Checkpoint`] to `sink` every `every` iterations (the CLI
    /// uses this to write periodic checkpoint files).
    pub fn with_checkpoint_sink(mut self, every: usize, sink: CheckpointSink) -> Self {
        self.checkpoint_every = every;
        self.checkpoint_sink = Some(sink);
        self
    }

    /// Sets how many *consecutive* sink failures the run tolerates before
    /// [`TrainMonitor::sink_checkpoint`] aborts it (default 3; minimum 1).
    pub fn with_max_checkpoint_failures(mut self, n: usize) -> Self {
        self.max_checkpoint_failures = n.max(1);
        self
    }

    /// The attached run log, if any (e.g. to read failure counters).
    pub fn log(&self) -> Option<&RunLog> {
        self.log.as_ref()
    }

    /// The attached watchdog, if any.
    pub fn watchdog(&self) -> Option<&Watchdog> {
        self.watchdog.as_ref()
    }

    /// Emits an arbitrary event to the log (no-op without a log).
    pub fn emit(&mut self, event: &RunEvent) {
        if let Some(log) = self.log.as_mut() {
            log.emit(event);
        }
    }

    /// Emits the run header. `header` is only invoked when a log is
    /// attached; the closure receives the monitor's label and seed.
    pub fn emit_header(&mut self, header: impl FnOnce(String, Option<u64>) -> RunHeader) {
        if self.log.is_some() {
            let h = header(self.label.clone(), self.seed);
            self.emit(&RunEvent::Header(h));
        }
    }

    /// Emits one iteration event built from trainer step metrics.
    pub fn emit_iteration(&mut self, m: &StepMetrics) {
        if self.log.is_some() {
            self.emit(&RunEvent::Iteration(IterationEvent::from_step(m)));
        }
    }

    /// Runs the watchdog on this iteration. On a finding, emits the
    /// divergence event and returns `(detail, policy)` for the caller to
    /// act on; `None` means healthy (or no watchdog attached).
    pub fn watchdog_inspect(
        &mut self,
        it: usize,
        losses: &[(&str, f32)],
        store: &ParamStore,
    ) -> Option<(String, DivergencePolicy)> {
        let wd = self.watchdog.as_mut()?;
        let detail = wd.inspect(it, losses, store)?;
        let action = wd.policy();
        self.emit(&RunEvent::Divergence(DivergenceEvent { iteration: it, detail: detail.clone(), action }));
        Some((detail, action))
    }

    /// Iteration of the watchdog's first detection, if any.
    pub fn first_divergence(&self) -> Option<usize> {
        self.watchdog.as_ref().and_then(|w| w.first_divergence())
    }

    /// True when the watchdog wants a healthy-state rollback snapshot at
    /// this iteration.
    pub fn wants_rollback_snapshot(&self, it: usize) -> bool {
        self.watchdog.as_ref().is_some_and(|w| w.wants_snapshot(it))
    }

    /// Hands a healthy-state snapshot to the watchdog.
    pub fn store_rollback_snapshot(&mut self, ck: Checkpoint) {
        if let Some(wd) = self.watchdog.as_mut() {
            wd.store_snapshot(ck);
        }
    }

    /// Takes the watchdog's rollback snapshot, if it holds one.
    pub fn take_rollback_snapshot(&mut self) -> Option<Checkpoint> {
        self.watchdog.as_mut().and_then(|w| w.take_snapshot())
    }

    /// True when a periodic checkpoint is due after iteration `it`.
    pub fn checkpoint_due(&self, it: usize) -> bool {
        self.checkpoint_sink.is_some()
            && self.checkpoint_every > 0
            && (it + 1).is_multiple_of(self.checkpoint_every)
    }

    /// Delivers a checkpoint to the sink.
    ///
    /// A sink failure is surfaced three ways: a [`RunEvent::CheckpointFailure`]
    /// in the log, a stderr warning, and — once
    /// [`TrainMonitor::with_max_checkpoint_failures`] failures pile up with no
    /// intervening success — a [`TrainError::CheckpointFailed`] that aborts
    /// the run. (These writes used to fail silently, leaving long runs with
    /// no durable safety net.)
    pub fn sink_checkpoint(&mut self, it: usize, ck: &Checkpoint) -> Result<(), TrainError> {
        let Some(sink) = self.checkpoint_sink.as_mut() else { return Ok(()) };
        match sink(it, ck) {
            Ok(()) => {
                self.checkpoint_failures = 0;
                Ok(())
            }
            Err(detail) => {
                self.checkpoint_failures += 1;
                let consecutive = self.checkpoint_failures;
                eprintln!(
                    "warning: checkpoint write failed at iteration {it} \
                     ({consecutive}/{} consecutive): {detail}",
                    self.max_checkpoint_failures
                );
                self.emit(&RunEvent::CheckpointFailure(CheckpointFailureEvent {
                    iteration: it,
                    consecutive,
                    detail: detail.clone(),
                }));
                if consecutive >= self.max_checkpoint_failures {
                    Err(TrainError::CheckpointFailed { iteration: it, consecutive, detail })
                } else {
                    Ok(())
                }
            }
        }
    }

    /// Consecutive sink failures since the last success.
    pub fn checkpoint_failures(&self) -> usize {
        self.checkpoint_failures
    }

    /// Emits a heartbeat when one is due after iteration `it`.
    pub fn maybe_heartbeat(
        &mut self,
        it: usize,
        planned_iterations: usize,
        started: Instant,
        workspace: WorkspaceStats,
    ) {
        if self.log.is_none() || self.heartbeat_every == 0 || !(it + 1).is_multiple_of(self.heartbeat_every) {
            return;
        }
        let done = (it + 1) as f64;
        let elapsed_ms = started.elapsed().as_secs_f64() * 1e3;
        let iters_per_sec = if elapsed_ms > 0.0 { done / (elapsed_ms / 1e3) } else { 0.0 };
        let remaining = planned_iterations.saturating_sub(it + 1) as f64;
        let eta_ms = if done > 0.0 { elapsed_ms / done * remaining } else { 0.0 };
        self.emit(&RunEvent::Heartbeat(HeartbeatEvent {
            iteration: it,
            elapsed_ms,
            iters_per_sec,
            eta_ms,
            workspace,
        }));
    }

    /// Emits the run-end summary.
    pub fn emit_end(&mut self, iterations_run: usize, started: Instant, outcome: RunOutcome) {
        if self.log.is_some() {
            let wall_ms = started.elapsed().as_secs_f64() * 1e3;
            self.emit(&RunEvent::End(RunEndEvent { iterations_run, wall_ms, outcome }));
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dg_nn::tensor::Tensor;

    #[test]
    fn run_log_jsonl_roundtrips_every_event_kind() {
        let (mut log, buf) = RunLog::in_memory();
        let events = vec![
            RunEvent::Header(RunHeader {
                label: "test".into(),
                seed: Some(7),
                iterations: 10,
                num_samples: 24,
                batch_size: 8,
                d_steps_per_g: 1,
                threads: 2,
                dp: false,
            }),
            RunEvent::Iteration(IterationEvent {
                iteration: 0,
                d_loss: Some(1.5),
                g_loss: Some(-0.25),
                gp: Some(0.1),
                wasserstein: Some(0.5),
                d_ms: 2.5,
                g_ms: 1.25,
                gen_ms: 0.5,
            }),
            RunEvent::Heartbeat(HeartbeatEvent {
                iteration: 4,
                elapsed_ms: 100.0,
                iters_per_sec: 50.0,
                eta_ms: 100.0,
                workspace: WorkspaceStats { hits: 3, misses: 1, reclaimed: 4, dropped: 0 },
            }),
            RunEvent::Divergence(DivergenceEvent {
                iteration: 5,
                detail: "loss `d_loss` is NaN".into(),
                action: DivergencePolicy::Abort,
            }),
            RunEvent::End(RunEndEvent { iterations_run: 6, wall_ms: 120.0, outcome: RunOutcome::Aborted }),
        ];
        for e in &events {
            log.emit(e);
        }
        assert_eq!(log.events_written(), events.len() as u64);
        assert_eq!(log.write_failures(), 0);
        let parsed = parse_jsonl(&buf.contents()).expect("run log must parse line-for-line");
        assert_eq!(parsed, events);
    }

    #[test]
    fn non_finite_losses_serialize_as_null_and_still_parse() {
        let (mut log, buf) = RunLog::in_memory();
        let m = StepMetrics { iteration: 3, d_loss: f32::NAN, g_loss: f32::INFINITY, ..Default::default() };
        log.emit(&RunEvent::Iteration(IterationEvent::from_step(&m)));
        let text = buf.contents();
        assert!(text.contains("null"), "non-finite losses must be carried as null: {text}");
        let parsed = parse_jsonl(&text).expect("NaN-bearing iteration line must still parse");
        match &parsed[0] {
            RunEvent::Iteration(ev) => {
                assert_eq!(ev.iteration, 3);
                assert_eq!(ev.d_loss, None);
                assert_eq!(ev.g_loss, None);
                assert_eq!(ev.gp, Some(0.0));
            }
            other => panic!("expected an iteration event, got {other:?}"),
        }
    }

    #[test]
    fn watchdog_flags_nonfinite_losses_and_params() {
        assert!(Watchdog::losses_finding(&[("d_loss", 1.0), ("g_loss", 2.0)]).is_none());
        let f = Watchdog::losses_finding(&[("d_loss", 1.0), ("gp", f32::NAN)]).expect("NaN gp");
        assert!(f.contains("gp") && f.contains("NaN"), "{f}");

        let mut store = ParamStore::new();
        store.add("healthy", Tensor::ones(2, 2));
        let id = store.add("sick", Tensor::zeros(1, 3));
        assert!(Watchdog::store_finding(&store).is_none());
        store.get_mut(id).set(0, 2, f32::NEG_INFINITY);
        let f = Watchdog::store_finding(&store).expect("must find -Inf");
        assert!(f.contains("sick") && f.contains("-Inf") && f.contains("scalar 2"), "{f}");
        assert!(f.contains(&format!("0x{:08x}", f32::NEG_INFINITY.to_bits())), "{f}");
    }

    #[test]
    fn watchdog_store_scan_honors_cadence() {
        let mut store = ParamStore::new();
        let id = store.add("p", Tensor::zeros(1, 1));
        store.get_mut(id).set(0, 0, f32::NAN);
        let mut wd = Watchdog::new(WatchdogConfig { check_every: 10, policy: DivergencePolicy::Warn });
        // Finite losses + off-cadence iteration: the store scan is skipped.
        assert!(wd.inspect(3, &[("loss", 0.0)], &store).is_none());
        assert!(wd.first_divergence().is_none());
        // On-cadence iteration: the scan fires.
        assert!(wd.inspect(10, &[("loss", 0.0)], &store).is_some());
        assert_eq!(wd.first_divergence(), Some(10));
    }

    #[test]
    fn divergence_policy_parses_cli_names() {
        assert_eq!("warn".parse::<DivergencePolicy>().unwrap(), DivergencePolicy::Warn);
        assert_eq!("abort".parse::<DivergencePolicy>().unwrap(), DivergencePolicy::Abort);
        assert_eq!("rollback".parse::<DivergencePolicy>().unwrap(), DivergencePolicy::RollbackToCheckpoint);
        assert!("explode".parse::<DivergencePolicy>().is_err());
    }

    #[test]
    fn disabled_monitor_is_inert() {
        let mut mon = TrainMonitor::disabled();
        let store = ParamStore::new();
        assert!(mon.watchdog_inspect(0, &[("d_loss", f32::NAN)], &store).is_none());
        assert!(!mon.wants_rollback_snapshot(0));
        assert!(!mon.checkpoint_due(0));
        mon.emit_iteration(&StepMetrics::default());
        mon.emit_end(0, Instant::now(), RunOutcome::Completed);
        assert!(mon.log().is_none());
    }
}
