//! A serializable training RNG, so bit-exact resume survives process
//! death.
//!
//! [`crate::checkpoint::Checkpoint`] restores the model, optimizer, and
//! batch-shuffler state exactly, but `rand`'s `StdRng` cannot be
//! serialized — so a resumed *process* used to re-seed and walk a
//! different noise stream than the uninterrupted run. [`TrainRng`]
//! (xoshiro256\*\*, SplitMix64-seeded) closes that gap: its four `u64`
//! words of state serialize with plain serde derives and restore the
//! exact stream position. [`SharedRng`] wraps it in a cloneable handle
//! implementing [`rand::RngCore`], so a checkpoint sink can snapshot the
//! stream mid-`fit` while the training loop holds the RNG mutably.
//!
//! The stream differs from `StdRng`'s (ChaCha12) — runs seeded under one
//! generator are not comparable to runs seeded under the other, and no
//! test in this workspace compares across generators; resume tests
//! compare identically-seeded [`TrainRng`] runs against each other.

use serde::{Deserialize, Serialize};
use std::sync::{Arc, Mutex};

/// Serializable xoshiro256\*\* generator for training streams.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct TrainRng {
    /// State word 0.
    pub s0: u64,
    /// State word 1.
    pub s1: u64,
    /// State word 2.
    pub s2: u64,
    /// State word 3.
    pub s3: u64,
}

impl TrainRng {
    /// Seeds via SplitMix64 expansion (the standard xoshiro seeding).
    pub fn seed_from_u64(seed: u64) -> Self {
        let mut sm = seed;
        let mut next = move || {
            sm = sm.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = sm;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        };
        TrainRng { s0: next(), s1: next(), s2: next(), s3: next() }
    }

    fn step(&mut self) -> u64 {
        let result = self.s1.wrapping_mul(5).rotate_left(7).wrapping_mul(9);
        let t = self.s1 << 17;
        self.s2 ^= self.s0;
        self.s3 ^= self.s1;
        self.s1 ^= self.s2;
        self.s0 ^= self.s3;
        self.s2 ^= t;
        self.s3 = self.s3.rotate_left(45);
        result
    }
}

impl rand::RngCore for TrainRng {
    fn next_u32(&mut self) -> u32 {
        (self.step() >> 32) as u32
    }

    fn next_u64(&mut self) -> u64 {
        self.step()
    }

    fn fill_bytes(&mut self, dest: &mut [u8]) {
        for chunk in dest.chunks_mut(8) {
            let bytes = self.step().to_le_bytes();
            chunk.copy_from_slice(&bytes[..chunk.len()]);
        }
    }

    fn try_fill_bytes(&mut self, dest: &mut [u8]) -> Result<(), rand::Error> {
        self.fill_bytes(dest);
        Ok(())
    }
}

/// A cloneable handle over a [`TrainRng`]. The training loop draws from
/// one clone while the periodic checkpoint sink snapshots the exact
/// stream position from another.
#[derive(Debug, Clone)]
pub struct SharedRng(Arc<Mutex<TrainRng>>);

impl SharedRng {
    /// Wraps `rng` in a shared handle.
    pub fn new(rng: TrainRng) -> Self {
        SharedRng(Arc::new(Mutex::new(rng)))
    }

    /// A shared handle seeded via [`TrainRng::seed_from_u64`].
    pub fn seed_from_u64(seed: u64) -> Self {
        Self::new(TrainRng::seed_from_u64(seed))
    }

    /// The current stream state (copy); feeding it back through
    /// [`SharedRng::new`] continues the stream bitwise-identically.
    pub fn snapshot(&self) -> TrainRng {
        *self.0.lock().expect("rng lock poisoned")
    }
}

impl rand::RngCore for SharedRng {
    fn next_u32(&mut self) -> u32 {
        (self.0.lock().expect("rng lock poisoned").step() >> 32) as u32
    }

    fn next_u64(&mut self) -> u64 {
        self.0.lock().expect("rng lock poisoned").step()
    }

    fn fill_bytes(&mut self, dest: &mut [u8]) {
        rand::RngCore::fill_bytes(&mut *self.0.lock().expect("rng lock poisoned"), dest)
    }

    fn try_fill_bytes(&mut self, dest: &mut [u8]) -> Result<(), rand::Error> {
        self.fill_bytes(dest);
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::RngCore;

    #[test]
    fn same_seed_same_stream() {
        let mut a = TrainRng::seed_from_u64(11);
        let mut b = TrainRng::seed_from_u64(11);
        for _ in 0..200 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
        let mut c = TrainRng::seed_from_u64(12);
        assert_ne!(a.next_u64(), c.next_u64());
    }

    #[test]
    fn snapshot_restores_exact_stream_position() {
        let mut reference = TrainRng::seed_from_u64(7);
        let mut shared = SharedRng::seed_from_u64(7);
        for _ in 0..37 {
            assert_eq!(reference.next_u64(), shared.next_u64());
        }
        // A "process restart": serialize the snapshot, parse it back, and
        // continue on a fresh handle.
        let json = serde_json::to_string(&shared.snapshot()).expect("serialize");
        let restored: TrainRng = serde_json::from_str(&json).expect("parse");
        let mut resumed = SharedRng::new(restored);
        for _ in 0..100 {
            assert_eq!(reference.next_u64(), resumed.next_u64());
        }
    }

    #[test]
    fn clones_share_one_stream() {
        let mut a = SharedRng::seed_from_u64(3);
        let mut b = a.clone();
        let x = a.next_u64();
        let y = b.next_u64();
        assert_ne!(x, y, "the second draw must advance past the first");
        let mut fresh = TrainRng::seed_from_u64(3);
        assert_eq!(fresh.next_u64(), x);
        assert_eq!(fresh.next_u64(), y);
    }

    #[test]
    fn fill_bytes_covers_partial_chunks() {
        let mut rng = TrainRng::seed_from_u64(5);
        let mut buf = [0u8; 13];
        rng.fill_bytes(&mut buf);
        assert_ne!(buf, [0u8; 13]);
        let mut ok = [0u8; 13];
        let mut rng2 = TrainRng::seed_from_u64(5);
        rng2.try_fill_bytes(&mut ok).expect("infallible");
        assert_eq!(buf, ok);
    }
}
