//! The DoppelGANger model (§4, Fig. 6).
//!
//! Three-stage conditional generator + two Wasserstein critics:
//!
//! 1. **Attribute generator** — MLP mapping noise to the encoded attribute
//!    vector `A` (one-hot blocks through softmax);
//! 2. **Min/max generator** — MLP mapping `[A, noise]` to the per-sample
//!    `(max±min)/2` fake attributes (auto-normalization, §4.1.3);
//! 3. **Feature generator** — an LSTM conditioned on `[A, minmax, noise]`
//!    at *every* step whose MLP head emits `S` consecutive records per pass
//!    (batched generation, §4.1.1), each record carrying its generation
//!    flag pair;
//!
//! plus the **primary discriminator** on the whole object
//! `[A | minmax | features]` and the optional **auxiliary discriminator** on
//! `[A | minmax]` only (§4.2).

use crate::config::DgConfig;
use crate::layout::OutputLayout;
use dg_data::{Dataset, EncodedDataset, Encoder, TimeSeriesObject};
use dg_nn::graph::{Graph, Var};
use dg_nn::layers::{Activation, LstmCell, Mlp};
use dg_nn::params::{ParamId, ParamStore};
use dg_nn::tensor::Tensor;
use rand::Rng;
use serde::{Deserialize, Serialize};

/// A trained (or trainable) DoppelGANger model.
///
/// The whole struct — parameters included — is serde-serializable: the
/// paper's workflow (Fig. 2) has the data holder release exactly these model
/// parameters to the data consumer.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct DoppelGanger {
    /// Hyper-parameters.
    pub config: DgConfig,
    /// Fitted encoder (scaling constants, schema).
    pub encoder: Encoder,
    /// All trainable parameters.
    pub store: ParamStore,
    /// Attribute generator MLP.
    pub attr_gen: Mlp,
    /// Min/max generator MLP (absent when auto-normalization is off).
    pub minmax_gen: Option<Mlp>,
    /// Feature-generator LSTM cell.
    pub feat_lstm: LstmCell,
    /// Feature-generator MLP head (LSTM hidden -> `S` records).
    pub feat_head: Mlp,
    /// Primary discriminator.
    pub disc: Mlp,
    /// Auxiliary discriminator (§4.2), when enabled.
    pub aux_disc: Option<Mlp>,
    attr_layout: OutputLayout,
    minmax_layout: OutputLayout,
    head_layout: OutputLayout,
    /// Number of LSTM passes (`ceil(max_len / S)`).
    pub num_steps: usize,
}

impl DoppelGanger {
    /// Builds a model for `dataset`, fitting the encoder and initializing all
    /// networks.
    pub fn new<R: Rng + ?Sized>(dataset: &Dataset, config: DgConfig, rng: &mut R) -> Self {
        let encoder = Encoder::fit(dataset, config.encoder);
        Self::with_encoder(encoder, config, rng)
    }

    /// Builds a model from an already-fitted encoder.
    pub fn with_encoder<R: Rng + ?Sized>(encoder: Encoder, config: DgConfig, rng: &mut R) -> Self {
        let schema = &encoder.schema;
        assert!(schema.attr_encoded_width() > 0, "DoppelGANger requires at least one attribute");
        let range = config.encoder.range;
        let attr_layout = OutputLayout::attributes(schema, range);
        let minmax_layout = OutputLayout::minmax(&encoder, range);
        let step_layout = OutputLayout::step(schema, range);
        let s = config.feature_batch_size.max(1);
        let head_layout = step_layout.tiled(s);
        let num_steps = schema.max_len.div_ceil(s);

        let mut store = ParamStore::new();
        let gen_act = Activation::LeakyRelu(0.2);
        let attr_gen = Mlp::new(
            &mut store,
            "attr_gen",
            config.attr_noise_dim,
            config.attr_hidden,
            config.attr_depth,
            attr_layout.width,
            gen_act,
            Activation::Linear,
            rng,
        );
        let minmax_gen = if minmax_layout.width > 0 {
            Some(Mlp::new(
                &mut store,
                "minmax_gen",
                attr_layout.width + config.minmax_noise_dim,
                config.minmax_hidden,
                config.minmax_depth,
                minmax_layout.width,
                gen_act,
                Activation::Linear,
                rng,
            ))
        } else {
            None
        };
        let cond_width = attr_layout.width + minmax_layout.width;
        let feat_lstm = LstmCell::new(
            &mut store,
            "feat_lstm",
            cond_width + config.feature_noise_dim,
            config.lstm_hidden,
            rng,
        );
        let feat_head = Mlp::new(
            &mut store,
            "feat_head",
            config.lstm_hidden,
            config.head_hidden,
            1,
            head_layout.width,
            gen_act,
            Activation::Linear,
            rng,
        );
        let disc_in = cond_width + schema.max_len * step_layout.width;
        let disc = Mlp::new(
            &mut store,
            "disc",
            disc_in,
            config.disc_hidden,
            config.disc_depth,
            1,
            Activation::LeakyRelu(config.disc_leak),
            Activation::Linear,
            rng,
        );
        let aux_disc = if config.auxiliary_discriminator {
            Some(Mlp::new(
                &mut store,
                "aux_disc",
                cond_width,
                config.disc_hidden,
                config.disc_depth,
                1,
                Activation::LeakyRelu(config.disc_leak),
                Activation::Linear,
                rng,
            ))
        } else {
            None
        };

        DoppelGanger {
            config,
            encoder,
            store,
            attr_gen,
            minmax_gen,
            feat_lstm,
            feat_head,
            disc,
            aux_disc,
            attr_layout,
            minmax_layout,
            head_layout,
            num_steps,
        }
    }

    /// Width of the primary discriminator's input.
    pub fn disc_input_width(&self) -> usize {
        self.encoder.attr_width()
            + self.encoder.minmax_width()
            + self.encoder.max_len() * self.encoder.step_width()
    }

    /// Width of the auxiliary discriminator's input (`[A | minmax]`).
    pub fn aux_input_width(&self) -> usize {
        self.encoder.attr_width() + self.encoder.minmax_width()
    }

    // ---- parameter groups -------------------------------------------------

    /// Parameters of the attribute generator only (the retrainable subset of
    /// §5.2 / §5.3.2).
    pub fn attr_gen_params(&self) -> Vec<ParamId> {
        self.attr_gen.params()
    }

    /// Parameters of the full generator (attribute + min/max + feature).
    pub fn generator_params(&self) -> Vec<ParamId> {
        let mut p = self.attr_gen.params();
        if let Some(m) = &self.minmax_gen {
            p.extend(m.params());
        }
        p.extend(self.feat_lstm.params());
        p.extend(self.feat_head.params());
        p
    }

    /// Parameters of both discriminators.
    pub fn discriminator_params(&self) -> Vec<ParamId> {
        let mut p = self.disc.params();
        if let Some(a) = &self.aux_disc {
            p.extend(a.params());
        }
        p
    }

    /// Parameters of the auxiliary discriminator (empty when disabled).
    pub fn aux_disc_params(&self) -> Vec<ParamId> {
        self.aux_disc.as_ref().map(|a| a.params()).unwrap_or_default()
    }

    // ---- graph builders ----------------------------------------------------

    /// Records attribute generation for a batch; `frozen` stops gradients at
    /// the generator weights.
    pub fn gen_attributes<R: Rng + ?Sized>(
        &self,
        g: &mut Graph,
        batch: usize,
        rng: &mut R,
        frozen: bool,
    ) -> Var {
        let z = g.constant_randn(batch, self.config.attr_noise_dim, 1.0, rng);
        self.gen_attributes_z(g, z, frozen)
    }

    pub(crate) fn gen_attributes_z(&self, g: &mut Graph, z: Var, frozen: bool) -> Var {
        let raw = if frozen {
            self.attr_gen.forward_frozen(g, &self.store, z)
        } else {
            self.attr_gen.forward(g, &self.store, z)
        };
        self.attr_layout.apply(g, raw)
    }

    /// Records min/max generation conditioned on (generated or encoded)
    /// attributes. Returns a zero-width var when auto-normalization is off.
    pub fn gen_minmax<R: Rng + ?Sized>(&self, g: &mut Graph, attrs: Var, rng: &mut R, frozen: bool) -> Var {
        let batch = g.value(attrs).rows();
        let z =
            self.minmax_gen.as_ref().map(|_| g.constant_randn(batch, self.config.minmax_noise_dim, 1.0, rng));
        self.gen_minmax_z(g, attrs, z, frozen)
    }

    pub(crate) fn gen_minmax_z(&self, g: &mut Graph, attrs: Var, z: Option<Var>, frozen: bool) -> Var {
        let batch = g.value(attrs).rows();
        match &self.minmax_gen {
            None => g.constant_zeros(batch, 0),
            Some(mm) => {
                let z = z.expect("min/max noise must be drawn when the min/max generator exists");
                let inp = g.concat_cols(&[attrs, z]);
                let raw = if frozen {
                    mm.forward_frozen(g, &self.store, inp)
                } else {
                    mm.forward(g, &self.store, inp)
                };
                self.minmax_layout.apply(g, raw)
            }
        }
    }

    /// Records feature generation conditioned on attributes and min/max.
    /// Produces the full flattened `[B, max_len * step_width]` feature block
    /// (records + generation flags).
    pub fn gen_features<R: Rng + ?Sized>(
        &self,
        g: &mut Graph,
        attrs: Var,
        minmax: Var,
        rng: &mut R,
        frozen: bool,
    ) -> Var {
        let batch = g.value(attrs).rows();
        let dim = self.config.feature_noise_dim;
        self.gen_features_z(g, attrs, minmax, &mut |g| g.constant_randn(batch, dim, 1.0, rng), frozen)
    }

    pub(crate) fn gen_features_z(
        &self,
        g: &mut Graph,
        attrs: Var,
        minmax: Var,
        next_z: &mut dyn FnMut(&mut Graph) -> Var,
        frozen: bool,
    ) -> Var {
        let batch = g.value(attrs).rows();
        let mut state = self.feat_lstm.zero_state(g, batch);
        let mut outs = Vec::with_capacity(self.num_steps);
        for _ in 0..self.num_steps {
            let z = next_z(g);
            let inp = if g.value(minmax).cols() > 0 {
                g.concat_cols(&[attrs, minmax, z])
            } else {
                g.concat_cols(&[attrs, z])
            };
            state = if frozen {
                self.feat_lstm.step_frozen(g, &self.store, inp, state)
            } else {
                self.feat_lstm.step(g, &self.store, inp, state)
            };
            let raw = if frozen {
                self.feat_head.forward_frozen(g, &self.store, state.h)
            } else {
                self.feat_head.forward(g, &self.store, state.h)
            };
            outs.push(self.head_layout.apply(g, raw));
        }
        let full = g.concat_cols(&outs);
        let want = self.encoder.max_len() * self.encoder.step_width();
        if g.value(full).cols() > want {
            g.slice_cols(full, 0, want)
        } else {
            full
        }
    }

    /// Records full-object generation, returning
    /// `(attributes, minmax, features, [A | minmax | features])`.
    pub fn gen_full<R: Rng + ?Sized>(
        &self,
        g: &mut Graph,
        batch: usize,
        rng: &mut R,
        frozen: bool,
    ) -> (Var, Var, Var, Var) {
        let attrs = self.gen_attributes(g, batch, rng, frozen);
        let minmax = self.gen_minmax(g, attrs, rng, frozen);
        let feats = self.gen_features(g, attrs, minmax, rng, frozen);
        let full = if g.value(minmax).cols() > 0 {
            g.concat_cols(&[attrs, minmax, feats])
        } else {
            g.concat_cols(&[attrs, feats])
        };
        (attrs, minmax, feats, full)
    }

    /// Scores a batch with the primary discriminator; `frozen` stops
    /// gradients at the discriminator weights (generator updates).
    pub fn discriminate(&self, g: &mut Graph, full: Var, frozen: bool) -> Var {
        if frozen {
            self.disc.forward_frozen(g, &self.store, full)
        } else {
            self.disc.forward(g, &self.store, full)
        }
    }

    /// Scores `[A | minmax]` with the auxiliary discriminator.
    ///
    /// # Panics
    /// Panics if the auxiliary discriminator is disabled.
    pub fn discriminate_aux(&self, g: &mut Graph, attrs_minmax: Var, frozen: bool) -> Var {
        let aux = self.aux_disc.as_ref().expect("auxiliary discriminator is disabled");
        if frozen {
            aux.forward_frozen(g, &self.store, attrs_minmax)
        } else {
            aux.forward(g, &self.store, attrs_minmax)
        }
    }

    // ---- sampling (legacy entry points) ------------------------------------
    //
    // Generation lives in the sampler subsystem now ([`crate::sampler`]);
    // these wrappers delegate and exist only so released-model consumers
    // migrate on their own schedule.

    /// Generates `n` encoded samples with the frozen model.
    #[deprecated(
        since = "0.1.0",
        note = "generation moved to the sampler subsystem; use `dg_core::sampler::Sampler::generate_encoded`"
    )]
    pub fn generate_encoded<R: Rng + ?Sized>(&self, n: usize, rng: &mut R) -> (Tensor, Tensor, Tensor) {
        crate::sampler::encoded_rollout(self, None, n, rng, dg_nn::kernels::Precision::F32)
    }

    /// Generates `n` synthetic objects (decoded).
    #[deprecated(
        since = "0.1.0",
        note = "generation moved to the sampler subsystem; use `dg_core::sampler::Sampler::generate`"
    )]
    pub fn generate<R: Rng + ?Sized>(&self, n: usize, rng: &mut R) -> Vec<TimeSeriesObject> {
        let (a, m, f) = crate::sampler::encoded_rollout(self, None, n, rng, dg_nn::kernels::Precision::F32);
        self.encoder.decode(&a, &m, &f)
    }

    /// Generates one synthetic object per supplied attribute row,
    /// *conditioned* on those attributes (the §3.1 "desired attribute
    /// distribution" interface; see [`crate::retrain`] for the trainable
    /// variant).
    #[deprecated(
        since = "0.1.0",
        note = "generation moved to the sampler subsystem; use `dg_core::sampler::Sampler::generate_conditioned`"
    )]
    pub fn generate_conditioned<R: Rng + ?Sized>(
        &self,
        attribute_rows: &[Vec<dg_data::Value>],
        rng: &mut R,
    ) -> Vec<TimeSeriesObject> {
        crate::sampler::conditioned_rollout(
            self,
            None,
            attribute_rows,
            rng,
            dg_nn::parallel::num_threads(),
            dg_nn::kernels::Precision::F32,
        )
    }

    /// Generates `n` synthetic objects as a [`Dataset`] sharing the training
    /// schema.
    #[deprecated(
        since = "0.1.0",
        note = "generation moved to the sampler subsystem; use `dg_core::sampler::Sampler::generate_dataset`"
    )]
    pub fn generate_dataset<R: Rng + ?Sized>(&self, n: usize, rng: &mut R) -> Dataset {
        #[allow(deprecated)]
        Dataset::new(self.encoder.schema.clone(), self.generate(n, rng))
    }

    /// Encodes a real dataset with this model's fitted encoder.
    pub fn encode(&self, dataset: &Dataset) -> EncodedDataset {
        self.encoder.encode(dataset)
    }

    /// Serializes the released model parameters (Fig. 2 workflow) to JSON.
    pub fn to_json(&self) -> String {
        serde_json::to_string(self).expect("model serialization cannot fail")
    }

    /// Restores a model from [`DoppelGanger::to_json`] output.
    pub fn from_json(json: &str) -> Result<Self, serde_json::Error> {
        serde_json::from_str(json)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sampler::Sampler;
    use dg_data::Value;
    use dg_datasets::sine::{self, SineConfig};
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn tiny_model(seed: u64) -> (DoppelGanger, Dataset) {
        let mut rng = StdRng::seed_from_u64(seed);
        let cfg = SineConfig { num_objects: 30, length: 24, periods: vec![6, 12], noise_sigma: 0.05 };
        let data = sine::generate(&cfg, &mut rng);
        let mut dg_cfg = DgConfig::quick().with_recommended_s(24);
        dg_cfg.attr_hidden = 16;
        dg_cfg.lstm_hidden = 16;
        dg_cfg.head_hidden = 16;
        dg_cfg.disc_hidden = 24;
        dg_cfg.disc_depth = 2;
        dg_cfg.batch_size = 8;
        let model = DoppelGanger::new(&data, dg_cfg, &mut rng);
        (model, data)
    }

    #[test]
    fn shapes_are_consistent() {
        let (model, data) = tiny_model(1);
        let enc = model.encode(&data);
        assert_eq!(enc.full_width(), model.disc_input_width());
        assert_eq!(model.aux_input_width(), enc.attr_width + enc.minmax_width);

        let mut rng = StdRng::seed_from_u64(2);
        let mut g = Graph::new();
        let (a, m, f, full) = model.gen_full(&mut g, 5, &mut rng, true);
        assert_eq!(g.value(a).shape(), (5, enc.attr_width));
        assert_eq!(g.value(m).shape(), (5, enc.minmax_width));
        assert_eq!(g.value(f).shape(), (5, enc.max_len * enc.step_width));
        assert_eq!(g.value(full).shape(), (5, enc.full_width()));
    }

    #[test]
    fn generated_attributes_are_simplex_blocks() {
        let (model, _) = tiny_model(3);
        let mut rng = StdRng::seed_from_u64(4);
        let mut g = Graph::new();
        let a = model.gen_attributes(&mut g, 6, &mut rng, true);
        let v = g.value(a);
        for r in 0..6 {
            let s: f32 = v.row_slice(r).iter().sum();
            assert!((s - 1.0).abs() < 1e-4, "one-hot block should sum to 1, got {s}");
            assert!(v.row_slice(r).iter().all(|p| (0.0..=1.0).contains(p)));
        }
    }

    #[test]
    fn generated_objects_decode_with_valid_schema() {
        let (model, data) = tiny_model(5);
        let mut rng = StdRng::seed_from_u64(6);
        let sampler = Sampler::new(model);
        let objs = sampler.generate(12, &mut rng);
        assert_eq!(objs.len(), 12);
        for o in &objs {
            assert_eq!(o.attributes.len(), 1);
            assert!(matches!(o.attributes[0], Value::Cat(c) if c < 2));
            assert!(o.len() <= data.schema.max_len);
            for r in &o.records {
                assert!(r[0].cont().is_finite());
            }
        }
        // Dataset constructor re-validates everything.
        let _ = sampler.generate_dataset(5, &mut rng);
    }

    #[test]
    fn frozen_generation_leaves_no_param_grads() {
        let (model, _) = tiny_model(7);
        let mut rng = StdRng::seed_from_u64(8);
        let mut g = Graph::new();
        let (_, _, _, full) = model.gen_full(&mut g, 3, &mut rng, true);
        let score = model.discriminate(&mut g, full, false);
        let loss = g.mean_all(score);
        g.backward(loss);
        let grads = g.param_grads();
        // Only discriminator params receive gradients.
        for id in model.generator_params() {
            assert!(grads.get(id).is_none(), "frozen generator leaked grads");
        }
        assert!(model.disc.params().iter().any(|&id| grads.get(id).is_some()));
    }

    #[test]
    fn trainable_generation_reaches_generator_params() {
        let (model, _) = tiny_model(9);
        let mut rng = StdRng::seed_from_u64(10);
        let mut g = Graph::new();
        let (_, _, _, full) = model.gen_full(&mut g, 3, &mut rng, false);
        let score = model.discriminate(&mut g, full, true);
        let loss = g.mean_all(score);
        g.backward(loss);
        let grads = g.param_grads();
        for id in model.disc.params() {
            assert!(grads.get(id).is_none(), "frozen discriminator leaked grads");
        }
        // Every generator component receives gradients.
        let hit = |ids: Vec<ParamId>| ids.iter().any(|&id| grads.get(id).is_some());
        assert!(hit(model.attr_gen.params()), "attr gen");
        assert!(hit(model.feat_lstm.params()), "lstm");
        assert!(hit(model.feat_head.params()), "head");
        assert!(hit(model.minmax_gen.as_ref().unwrap().params()), "minmax gen");
    }

    #[test]
    fn serde_roundtrip_preserves_generation() {
        let (model, _) = tiny_model(11);
        let json = model.to_json();
        let back = DoppelGanger::from_json(&json).unwrap();
        let mut r1 = StdRng::seed_from_u64(12);
        let mut r2 = StdRng::seed_from_u64(12);
        let (a1, _, f1) = Sampler::new(model).generate_encoded(4, &mut r1);
        let (a2, _, f2) = Sampler::new(back).generate_encoded(4, &mut r2);
        assert_eq!(a1, a2);
        assert_eq!(f1, f2);
    }

    #[test]
    fn no_auto_norm_has_no_minmax_generator() {
        let mut rng = StdRng::seed_from_u64(13);
        let cfg = SineConfig { num_objects: 10, length: 12, periods: vec![4], noise_sigma: 0.0 };
        let data = sine::generate(&cfg, &mut rng);
        let dg_cfg = DgConfig::quick().with_recommended_s(12).without_auto_normalization();
        let model = DoppelGanger::new(&data, dg_cfg, &mut rng);
        assert!(model.minmax_gen.is_none());
        assert_eq!(model.encoder.minmax_width(), 0);
        let objs = Sampler::new(model).generate(3, &mut rng);
        assert_eq!(objs.len(), 3);
    }

    #[test]
    fn conditioned_generation_respects_requested_attributes() {
        let (model, _) = tiny_model(15);
        let mut rng = StdRng::seed_from_u64(16);
        let rows = vec![vec![Value::Cat(0)], vec![Value::Cat(1)], vec![Value::Cat(1)], vec![Value::Cat(0)]];
        let objs = Sampler::new(model).generate_conditioned(&rows, &mut rng);
        assert_eq!(objs.len(), 4);
        for (o, want) in objs.iter().zip(&rows) {
            assert_eq!(&o.attributes, want);
            assert!(!o.records.is_empty() || o.records.is_empty()); // decoded without panic
            for r in &o.records {
                assert!(r[0].cont().is_finite());
            }
        }
    }

    #[test]
    fn s_larger_than_len_still_works() {
        let mut rng = StdRng::seed_from_u64(14);
        let cfg = SineConfig { num_objects: 10, length: 10, periods: vec![5], noise_sigma: 0.0 };
        let data = sine::generate(&cfg, &mut rng);
        let dg_cfg = DgConfig::quick().with_s(16); // S > max_len: one pass, sliced
        let model = DoppelGanger::new(&data, dg_cfg, &mut rng);
        assert_eq!(model.num_steps, 1);
        let step_width = model.encoder.step_width();
        let (_, _, f) = Sampler::new(model).generate_encoded(2, &mut rng);
        assert_eq!(f.cols(), 10 * step_width);
    }
}
