//! Mixed-type output layouts.
//!
//! Generator outputs mix one-hot categorical blocks (softmax), continuous
//! values (tanh/sigmoid, per the encoder range) and generation-flag pairs
//! (softmax over 2). An [`OutputLayout`] records the block structure of one
//! output vector and applies the right activation to each block.

use dg_data::{Encoder, Range, Schema};
use dg_nn::graph::{Graph, Var};
use serde::{Deserialize, Serialize};

/// Activation class of one output block.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum BlockAct {
    /// Row-wise softmax over the block (categorical one-hot / flags).
    Softmax,
    /// Continuous output: tanh for `[-1, 1]` or sigmoid for `[0, 1]`.
    Continuous,
}

/// The block structure of one generator output vector.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct OutputLayout {
    /// `(start, end, activation)` triples covering `[0, width)`.
    pub blocks: Vec<(usize, usize, BlockAct)>,
    /// Total width.
    pub width: usize,
    /// Continuous activation range.
    pub range: Range,
}

impl OutputLayout {
    /// Layout of the encoded attribute vector.
    pub fn attributes(schema: &Schema, range: Range) -> Self {
        let mut blocks = Vec::new();
        let mut off = 0;
        for spec in &schema.attributes {
            let w = spec.kind.encoded_width();
            let act = if spec.kind.is_categorical() { BlockAct::Softmax } else { BlockAct::Continuous };
            blocks.push((off, off + w, act));
            off += w;
        }
        OutputLayout { blocks, width: off, range }
    }

    /// Layout of the min/max fake-attribute vector (all continuous).
    pub fn minmax(encoder: &Encoder, range: Range) -> Self {
        let w = encoder.minmax_width();
        let blocks = if w > 0 { vec![(0, w, BlockAct::Continuous)] } else { Vec::new() };
        OutputLayout { blocks, width: w, range }
    }

    /// Layout of one encoded step: feature blocks followed by the 2-wide
    /// generation-flag softmax.
    pub fn step(schema: &Schema, range: Range) -> Self {
        let mut blocks = Vec::new();
        let mut off = 0;
        for spec in &schema.features {
            let w = spec.kind.encoded_width();
            let act = if spec.kind.is_categorical() { BlockAct::Softmax } else { BlockAct::Continuous };
            blocks.push((off, off + w, act));
            off += w;
        }
        blocks.push((off, off + 2, BlockAct::Softmax));
        OutputLayout { blocks, width: off + 2, range }
    }

    /// Tiles this layout `n` times (the MLP head emits `S` consecutive
    /// steps per LSTM pass).
    pub fn tiled(&self, n: usize) -> OutputLayout {
        let mut blocks = Vec::with_capacity(self.blocks.len() * n);
        for i in 0..n {
            let off = i * self.width;
            for &(s, e, a) in &self.blocks {
                blocks.push((off + s, off + e, a));
            }
        }
        OutputLayout { blocks, width: self.width * n, range: self.range }
    }

    /// Applies per-block activations to a raw (linear) output var.
    pub fn apply(&self, g: &mut Graph, raw: Var) -> Var {
        assert_eq!(g.value(raw).cols(), self.width, "layout width mismatch");
        if self.blocks.is_empty() {
            return raw;
        }
        // Fast path: a single block avoids the slice/concat round trip.
        if self.blocks.len() == 1 && self.blocks[0] == (0, self.width, self.blocks[0].2) {
            return self.activate_block(g, raw, self.blocks[0].2);
        }
        let mut parts = Vec::with_capacity(self.blocks.len());
        for &(s, e, a) in &self.blocks {
            let sl = g.slice_cols(raw, s, e);
            parts.push(self.activate_block(g, sl, a));
        }
        g.concat_cols(&parts)
    }

    fn activate_block(&self, g: &mut Graph, x: Var, act: BlockAct) -> Var {
        match act {
            BlockAct::Softmax => g.softmax(x),
            BlockAct::Continuous => match self.range {
                Range::SymmetricOne => g.tanh(x),
                Range::ZeroOne => g.sigmoid(x),
            },
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dg_data::{FieldKind, FieldSpec};
    use dg_nn::tensor::Tensor;

    fn schema() -> Schema {
        Schema::new(
            vec![
                FieldSpec::new("cat", FieldKind::categorical(["a", "b", "c"])),
                FieldSpec::new("num", FieldKind::continuous(0.0, 1.0)),
            ],
            vec![
                FieldSpec::new("x", FieldKind::continuous(0.0, 1.0)),
                FieldSpec::new("proto", FieldKind::categorical(["t", "u"])),
            ],
            8,
        )
    }

    #[test]
    fn attribute_layout_blocks() {
        let l = OutputLayout::attributes(&schema(), Range::SymmetricOne);
        assert_eq!(l.width, 4);
        assert_eq!(l.blocks, vec![(0, 3, BlockAct::Softmax), (3, 4, BlockAct::Continuous)]);
    }

    #[test]
    fn step_layout_appends_flags() {
        let l = OutputLayout::step(&schema(), Range::SymmetricOne);
        assert_eq!(l.width, 5); // 1 cont + 2 one-hot + 2 flags
        assert_eq!(l.blocks.last().unwrap(), &(3, 5, BlockAct::Softmax));
    }

    #[test]
    fn tiled_repeats_blocks_with_offset() {
        let l = OutputLayout::step(&schema(), Range::SymmetricOne).tiled(3);
        assert_eq!(l.width, 15);
        assert_eq!(l.blocks.len(), 9);
        assert_eq!(l.blocks[3], (5, 6, BlockAct::Continuous));
        assert_eq!(l.blocks[8], (13, 15, BlockAct::Softmax));
    }

    #[test]
    fn apply_activates_each_block() {
        let l = OutputLayout::attributes(&schema(), Range::SymmetricOne);
        let mut g = Graph::new();
        let raw = g.input(Tensor::from_vec(2, 4, vec![5.0, 1.0, 1.0, 3.0, 0.0, 0.0, 9.0, -3.0]));
        let out = l.apply(&mut g, raw);
        let v = g.value(out);
        // Softmax block sums to 1 per row.
        for r in 0..2 {
            let s: f32 = v.row_slice(r)[..3].iter().sum();
            assert!((s - 1.0).abs() < 1e-5);
        }
        // Continuous block is tanh-bounded.
        assert!(v.get(0, 3) > 0.99 && v.get(1, 3) < -0.99);
        // Gradient flows through the composite activation.
        let loss = g.sum_all(out);
        g.backward(loss);
        assert!(g.grad(raw).is_some());
    }

    #[test]
    fn zero_one_range_uses_sigmoid() {
        let l = OutputLayout { blocks: vec![(0, 2, BlockAct::Continuous)], width: 2, range: Range::ZeroOne };
        let mut g = Graph::new();
        let raw = g.constant(Tensor::from_vec(1, 2, vec![-10.0, 10.0]));
        let out = l.apply(&mut g, raw);
        assert!(g.value(out).get(0, 0) < 0.01);
        assert!(g.value(out).get(0, 1) > 0.99);
    }
}
